lib/litmus/enumerate.mli: Ast Axiom Format
