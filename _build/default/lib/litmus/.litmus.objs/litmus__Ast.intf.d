lib/litmus/ast.mli: Axiom Format
