lib/litmus/parser.mli: Ast
