lib/litmus/enumerate.ml: Ast Axiom Fmt Iset List Option Rel Relalg
