lib/litmus/parser.ml: Ast Axiom Buffer Format List Printf String
