lib/litmus/tso_machine.ml: Ast Axiom Enumerate Hashtbl List Option
