lib/litmus/dsl.ml: Ast Axiom List
