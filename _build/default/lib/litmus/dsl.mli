(** Combinators for writing litmus programs concisely in OCaml. *)

open Ast

val ( ! ) : int -> exp
val r : string -> exp

(** Plain load / store (x86 RMOV/WMOV, TCG ld/st, Arm LDR/STR).
    [ld reg loc], [st loc value]. *)
val ld : string -> string -> instr

val st : string -> int -> instr
val st_e : string -> exp -> instr

(** Arm annotated accesses. *)
val ld_acq : string -> string -> instr

val ld_q : string -> string -> instr
val st_rel : string -> int -> instr

(** Fences. *)
val mfence : instr

val dmb_full : instr
val dmb_ld : instr
val dmb_st : instr
val fence : Axiom.Event.fence -> instr

(** Compare-and-swap in each architecture's flavour.  [cas_* loc expect
    desired]. *)
val cas_x86 : ?reg:string -> string -> int -> int -> instr

val cas_tcg : ?reg:string -> string -> int -> int -> instr
val cas_amo_al : ?reg:string -> string -> int -> int -> instr
val cas_lxsx : ?reg:string -> ?acq:bool -> ?rel:bool -> string -> int -> int -> instr

val assign : string -> exp -> instr
val if_ : exp -> instr list -> instr
val if_else : exp -> instr list -> instr list -> instr

val prog : string -> (string * int) list -> instr list list -> prog
(** [prog name init [code0; code1; ...]] numbers threads from 0. *)

(** Condition combinators. *)
val reg_is : int -> string -> int -> cond

val loc_is : string -> int -> cond
val ( &&& ) : cond -> cond -> cond
val ( ||| ) : cond -> cond -> cond

val forbidden : cond -> prog -> test
val allowed : cond -> prog -> test
