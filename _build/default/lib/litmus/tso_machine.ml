module E = Axiom.Event

type tstate = {
  code : Ast.instr list;
  env : (string * int) list;  (* sorted by register name *)
  buf : (string * int) list;  (* store buffer, oldest first *)
}

type state = { threads : tstate list; mem : (string * int) list }

let set_assoc k v l = List.sort compare ((k, v) :: List.remove_assoc k l)

let rec eval env (e : Ast.exp) =
  match e with
  | Ast.Int n -> n
  | Ast.Reg r -> Option.value ~default:0 (List.assoc_opt r env)
  | Ast.Add (a, b) -> eval env a + eval env b
  | Ast.Sub (a, b) -> eval env a - eval env b
  | Ast.Mul (a, b) -> eval env a * eval env b
  | Ast.Xor (a, b) -> eval env a lxor eval env b
  | Ast.Eq (a, b) -> if eval env a = eval env b then 1 else 0
  | Ast.Ne (a, b) -> if eval env a <> eval env b then 1 else 0

let read_mem mem loc = Option.value ~default:0 (List.assoc_opt loc mem)

(* Newest buffered store to [loc], if any. *)
let read_buffer buf loc =
  List.fold_left
    (fun acc (l, v) -> if l = loc then Some v else acc)
    None buf

(* Successor states of one thread taking one step (plus, separately,
   draining one buffer entry). *)
let thread_steps s tid t =
  let with_thread t' threads =
    List.mapi (fun i x -> if i = tid then t' else x) threads
  in
  let drain =
    match t.buf with
    | (loc, v) :: rest ->
        [
          {
            threads = with_thread { t with buf = rest } s.threads;
            mem = set_assoc loc v s.mem;
          };
        ]
    | [] -> []
  in
  let exec =
    match t.code with
    | [] -> []
    | i :: rest -> (
        let continue ?(env = t.env) ?(buf = t.buf) ?(mem = s.mem) code =
          [ { threads = with_thread { code; env; buf } s.threads; mem } ]
        in
        match i with
        | Ast.Assign (r, e) -> continue ~env:(set_assoc r (eval t.env e) t.env) rest
        | Ast.Load { reg; loc; _ } ->
            let v =
              match read_buffer t.buf loc with
              | Some v -> v
              | None -> read_mem s.mem loc
            in
            continue ~env:(set_assoc reg v t.env) rest
        | Ast.Store { loc; value; _ } ->
            continue ~buf:(t.buf @ [ (loc, eval t.env value) ]) rest
        | Ast.Fence _ ->
            (* Only full fences appear in x86 programs; a fence may only
               retire once the buffer is empty. *)
            if t.buf = [] then continue rest else []
        | Ast.Cas { reg; loc; expect; desired; _ } ->
            if t.buf <> [] then []
            else
              let old = read_mem s.mem loc in
              let env =
                match reg with
                | Some r -> set_assoc r old t.env
                | None -> t.env
              in
              let mem =
                if old = eval t.env expect then
                  set_assoc loc (eval t.env desired) s.mem
                else s.mem
              in
              continue ~env ~mem rest
        | Ast.If { cond; then_; else_ } ->
            continue ((if eval t.env cond <> 0 then then_ else else_) @ rest))
  in
  drain @ exec

let steps s =
  List.concat (List.mapi (fun tid t -> thread_steps s tid t) s.threads)

let initial (p : Ast.prog) =
  {
    threads =
      List.map (fun (t : Ast.thread) -> { code = t.code; env = []; buf = [] }) p.threads;
    mem =
      List.sort compare
        (List.map (fun l -> (l, Option.value ~default:0 (List.assoc_opt l p.init)))
           (Ast.locations p));
  }

let final s = List.for_all (fun t -> t.code = [] && t.buf = []) s.threads

let explore p =
  let visited = Hashtbl.create 1024 in
  let finals = ref [] in
  let rec go s =
    if not (Hashtbl.mem visited s) then begin
      Hashtbl.replace visited s ();
      if final s then finals := s :: !finals;
      List.iter go (steps s)
    end
  in
  go (initial p);
  (!finals, Hashtbl.length visited)

let behaviour_of_state (p : Ast.prog) s =
  {
    Enumerate.mem = s.mem;
    regs =
      List.concat
        (List.map2
           (fun (t : Ast.thread) ts ->
             (* Report exactly the registers the enumerator reports:
                those written by the thread's code. *)
             List.filter_map
               (fun r ->
                 Option.map (fun v -> ((t.Ast.tid, r), v)) (List.assoc_opt r ts.env))
               (Ast.registers t))
           p.threads s.threads)
      |> List.sort compare;
  }

let behaviours p =
  let finals, _ = explore p in
  List.sort_uniq Enumerate.behaviour_compare
    (List.map (behaviour_of_state p) finals)

let explored_states p = snd (explore p)
