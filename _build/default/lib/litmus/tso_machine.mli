(** An operational x86-TSO machine: the classic store-buffer semantics
    (Owens et al., "A Better x86 Memory Model: x86-TSO" — the paper's
    [65]), as an independent validation of the axiomatic model.

    Each thread owns a FIFO store buffer; at any point a thread may
    either execute its next instruction or drain its oldest buffered
    store to shared memory:

    - loads read the newest buffered store to the location, else memory;
    - stores append to the buffer;
    - [MFENCE] and atomic RMWs require an empty buffer (they drain it),
      and RMWs read and write memory directly — LOCK-prefixed
      instructions drain the buffer whether or not the compare succeeds.

    {!behaviours} enumerates all reachable final states by exhaustive
    interleaving with memoization.  On programs whose every RMW
    succeeds or whose shapes do not exercise the store buffer through a
    failed RMW, it agrees exactly with the axiomatic
    {!Axiom.X86_tso.model} (property-tested); on a failed RMW the
    operational machine is strictly stronger, because the paper's
    axiomatic model (§5.2) only gives fence power to {e successful}
    RMWs — see the "failed RMW divergence" test for the witness. *)

(** All final behaviours of an x86-flavoured litmus program.  The
    program must only use plain accesses, [MFENCE] and [Rmw_x86]
    CAS. *)
val behaviours : Ast.prog -> Enumerate.behaviour list

(** Number of distinct states explored (for tests/curiosity). *)
val explored_states : Ast.prog -> int
