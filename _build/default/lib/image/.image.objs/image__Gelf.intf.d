lib/image/gelf.mli: X86
