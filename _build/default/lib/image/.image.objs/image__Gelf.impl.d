lib/image/gelf.ml: Buffer Char Int64 List String X86
