lib/linker/link.mli: Idl Image
