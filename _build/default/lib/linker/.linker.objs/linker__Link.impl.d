lib/linker/link.ml: Either Hostlib Idl Image Int64 List
