lib/linker/hostlib.mli: Idl Memsys
