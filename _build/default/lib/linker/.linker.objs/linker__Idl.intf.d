lib/linker/idl.mli: Format
