lib/linker/idl.ml: Fmt List Printf String
