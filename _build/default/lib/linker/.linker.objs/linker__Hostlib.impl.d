lib/linker/hostlib.ml: Idl Int64 List Memsys Option
