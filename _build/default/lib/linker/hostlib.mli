(** The native host shared libraries available to the dynamic linker.

    Each function carries its IDL signature, a semantic implementation
    (operating on guest memory for pointer arguments), and a cycle cost
    function — the model-time cost of the {e native} code, typically far
    below the cost of translating and running the guest implementation.

    Stand-ins provided: libm (sin…atan, exp, log, sqrt), libcrypto
    digests (md5/sha1/sha256 over guest buffers) and RSA sign/verify,
    libsqlite's speedtest step, and libc's strlen/memcpy. *)

type fn = {
  signature : Idl.signature;
  call : Memsys.Mem.t -> int64 list -> int64;
  cycles : int64 list -> int;  (** native execution cost *)
}

(** All registered host functions. *)
val all : (string * fn) list

val find : string -> fn option
val names : string list

(** The IDL text describing every function in {!all} (what a user would
    ship as the IDL file). *)
val idl_text : string

(** Float↔bits helpers used by f64 marshaling. *)
val of_f : float -> int64

val to_f : int64 -> float
