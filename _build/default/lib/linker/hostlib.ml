type fn = {
  signature : Idl.signature;
  call : Memsys.Mem.t -> int64 list -> int64;
  cycles : int64 list -> int;
}

let of_f = Int64.bits_of_float
let to_f = Int64.float_of_bits

let sig_ name ret args = { Idl.name; ret; args }

let float_fn name ~cost f =
  ( name,
    {
      signature = sig_ name Idl.F64 [ Idl.F64 ];
      call = (fun _ args -> of_f (f (to_f (List.nth args 0))));
      cycles = (fun _ -> cost);
    } )

(* FNV-style fold over a guest buffer: a deterministic digest stand-in
   with the right data-dependence shape. *)
let digest_bytes mem ptr len seed =
  let h = ref seed in
  for i = 0 to len - 1 do
    let b = Memsys.Mem.load_byte mem (Int64.add ptr (Int64.of_int i)) in
    h := Int64.add (Int64.mul !h 0x100000001b3L) (Int64.of_int (b + 1))
  done;
  !h

let digest_fn name ~seed ~cycles_per_byte ~setup =
  ( name,
    {
      signature = sig_ name Idl.I64 [ Idl.Ptr; Idl.I64 ];
      call =
        (fun mem args ->
          digest_bytes mem (List.nth args 0) (Int64.to_int (List.nth args 1)) seed);
      cycles =
        (fun args ->
          setup + int_of_float (cycles_per_byte *. Int64.to_float (List.nth args 1)));
    } )

(* RSA stand-in: a square-and-multiply flavoured mixing of the input,
   with the real operations' cost structure (sign ≫ verify). *)
let rsa_fn name ~cost =
  ( name,
    {
      signature = sig_ name Idl.I64 [ Idl.I64 ];
      call =
        (fun _ args ->
          let x = ref (Int64.logor (List.nth args 0) 1L) in
          for _ = 1 to 16 do
            x := Int64.add (Int64.mul !x !x) 0x9e3779b97f4a7c15L
          done;
          !x);
      cycles = (fun _ -> cost);
    } )

let all =
  [
    (* libm: software polynomial routines except sqrt (hardware) *)
    float_fn "sin" ~cost:150 sin;
    float_fn "cos" ~cost:150 cos;
    float_fn "tan" ~cost:175 tan;
    float_fn "asin" ~cost:185 asin;
    float_fn "acos" ~cost:185 acos;
    float_fn "atan" ~cost:175 atan;
    float_fn "exp" ~cost:130 exp;
    float_fn "log" ~cost:130 log;
    float_fn "sqrt" ~cost:14 sqrt (* hardware fsqrt *);
    (* libcrypto digests; costs reflect Arm crypto extensions *)
    digest_fn "md5" ~seed:0x6d643500L ~cycles_per_byte:9.0 ~setup:80;
    digest_fn "sha1" ~seed:0x73686131L ~cycles_per_byte:1.8 ~setup:80;
    digest_fn "sha256" ~seed:0x73323536L ~cycles_per_byte:1.0 ~setup:90;
    (* Model-scaled: real RSA is ~50x more cycles; the guest/native
       ratio — what Figure 13 reports — is preserved. *)
    rsa_fn "rsa1024_sign" ~cost:40_000;
    rsa_fn "rsa1024_verify" ~cost:1_500;
    rsa_fn "rsa2048_sign" ~cost:250_000;
    rsa_fn "rsa2048_verify" ~cost:4_500;
    (* libsqlite: one speedtest1 work unit *)
    ( "sqlite_step",
      {
        signature = sig_ "sqlite_step" Idl.I64 [ Idl.I64 ];
        call = (fun _ args -> Int64.add (List.nth args 0) 1L);
        cycles = (fun _ -> 20_000);
      } );
    (* libc *)
    ( "strlen",
      {
        signature = sig_ "strlen" Idl.I64 [ Idl.Ptr ];
        call =
          (fun mem args ->
            let ptr = List.nth args 0 in
            let rec go i =
              if Memsys.Mem.load_byte mem (Int64.add ptr (Int64.of_int i)) = 0
              then Int64.of_int i
              else go (i + 1)
            in
            go 0);
        cycles = (fun _ -> 40);
      } );
    ( "memcpy",
      {
        signature = sig_ "memcpy" Idl.Ptr [ Idl.Ptr; Idl.Ptr; Idl.I64 ];
        call =
          (fun mem args ->
            let dst = List.nth args 0
            and src = List.nth args 1
            and len = Int64.to_int (List.nth args 2) in
            for i = 0 to len - 1 do
              Memsys.Mem.store_byte mem
                (Int64.add dst (Int64.of_int i))
                (Memsys.Mem.load_byte mem (Int64.add src (Int64.of_int i)))
            done;
            dst);
        cycles = (fun args -> 12 + (Int64.to_int (List.nth args 2) / 8));
      } );
  ]

let find name = Option.map snd (List.find_opt (fun (n, _) -> n = name) all)
let names = List.map fst all
let idl_text = Idl.to_string (List.map (fun (_, f) -> f.signature) all)
