type ctype = I64 | F64 | Ptr | Void
type signature = { name : string; ret : ctype; args : ctype list }

exception Parse_error of { line : int; msg : string }

let err line msg = raise (Parse_error { line; msg })

let ctype_of_string line = function
  | "i64" -> I64
  | "f64" -> F64
  | "ptr" -> Ptr
  | "void" -> Void
  | s -> err line (Printf.sprintf "unknown type %S" s)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '@'

(* Tokenize a prototype into identifiers and punctuation. *)
let tokens line s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' -> go (i + 1) acc
      | '(' | ')' | ',' | ';' -> go (i + 1) (String.make 1 s.[i] :: acc)
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char s.[!j] do
            incr j
          done;
          go !j (String.sub s i (!j - i) :: acc)
      | c -> err line (Printf.sprintf "unexpected character %C" c)
  in
  go 0 []

let parse_signature_at line s =
  match tokens line s with
  | ret :: name :: "(" :: rest ->
      let ret = ctype_of_string line ret in
      let rec args acc = function
        | [ ")" ] | [ ")"; ";" ] -> List.rev acc
        | "void" :: rest' when acc = [] && (rest' = [ ")" ] || rest' = [ ")"; ";" ])
          ->
            []
        | ty :: tl -> (
            let ty = ctype_of_string line ty in
            match tl with
            | "," :: tl' -> args (ty :: acc) tl'
            | [ ")" ] | [ ")"; ";" ] -> List.rev (ty :: acc)
            | _ :: "," :: tl' (* named argument *) -> args (ty :: acc) tl'
            | [ _; ")" ] | [ _; ")"; ";" ] -> List.rev (ty :: acc)
            | _ -> err line "malformed argument list")
        | [] -> err line "unterminated argument list"
      in
      let args = args [] rest in
      if List.mem Void args then err line "void is not a valid argument type";
      { name; ret; args }
  | _ -> err line "expected: <ret-type> <name> ( <args> );"

let parse_signature s = parse_signature_at 0 s

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

let parse text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i l ->
         let l = String.trim (strip_comment l) in
         if l = "" then [] else [ parse_signature_at (i + 1) l ])
       lines)

let arity s = List.length s.args

let ctype_name = function I64 -> "i64" | F64 -> "f64" | Ptr -> "ptr" | Void -> "void"

let pp_ctype ppf t = Fmt.string ppf (ctype_name t)

let pp_signature ppf s =
  Fmt.pf ppf "%a %s(%a);" pp_ctype s.ret s.name
    (Fmt.list ~sep:(Fmt.any ", ") pp_ctype)
    s.args

let to_string sigs =
  String.concat "\n" (List.map (Fmt.str "%a" pp_signature) sigs)
