(** The Interface Definition Language describing shared-library function
    signatures to the runtime (paper §6.2).

    Signatures are written like C prototypes, one per line:

    {v
    # math
    f64 sin(f64);
    f64 atan2(f64 y, f64 x);
    i64 sha256(ptr buf, i64 len);
    void free(ptr);
    v}

    Argument names are optional; [#] starts a comment. *)

type ctype = I64 | F64 | Ptr | Void

type signature = { name : string; ret : ctype; args : ctype list }

exception Parse_error of { line : int; msg : string }

val parse : string -> signature list

(** Parse a single prototype (no trailing [;] required). *)
val parse_signature : string -> signature

val arity : signature -> int
val pp_ctype : Format.formatter -> ctype -> unit
val pp_signature : Format.formatter -> signature -> unit

(** Render back to IDL syntax. *)
val to_string : signature list -> string
