type entry = { name : string; plt_addr : int64; signature : Idl.signature }
type t = { table : entry list; unresolved : string list }

let empty = { table = []; unresolved = [] }

let resolve (image : Image.Gelf.t) sigs =
  let resolve_one name =
    match
      ( List.find_opt (fun (s : Idl.signature) -> s.name = name) sigs,
        Hostlib.find name,
        List.assoc_opt name image.Image.Gelf.plt )
    with
    | Some signature, Some _, Some plt_addr -> Either.Left { name; plt_addr; signature }
    | _ -> Either.Right name
  in
  let table, unresolved =
    List.partition_map resolve_one image.Image.Gelf.imports
  in
  { table; unresolved }

let entries t = t.table
let unresolved t = t.unresolved

let lookup t addr =
  List.find_opt (fun e -> Int64.equal e.plt_addr addr) t.table
