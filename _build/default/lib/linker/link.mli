(** PLT resolution (paper §6.2, Figure 11, steps 1–2).

    At load time the IDL is read, the image's imports (.dynsym) are
    matched against the described signatures and the available host
    functions, and each matched import's PLT address is stored in a
    lookup table.  At translation time the frontend checks every block
    address against this table. *)

type entry = { name : string; plt_addr : int64; signature : Idl.signature }

type t

(** [resolve image sigs] builds the lookup table for imports that are
    both described in the IDL and present in the host library. *)
val resolve : Image.Gelf.t -> Idl.signature list -> t

(** All resolved entries. *)
val entries : t -> entry list

(** Lookup by block address (Figure 11 step 3/4 dispatch). *)
val lookup : t -> int64 -> entry option

(** Imports that could not be linked (missing from the IDL or the host
    system) — these fall back to guest translation. *)
val unresolved : t -> string list

val empty : t
