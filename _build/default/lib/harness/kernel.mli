(** Workload kernels: parameterised instruction mixes compiled both to
    guest x86 (run through the DBT) and to native Arm (the paper's
    [native] baseline).

    Figure 12's relative run times are driven by the density of loads,
    stores, FP and atomic operations — the points where the mapping
    schemes insert fences or helper calls — so each PARSEC/Phoenix
    benchmark is represented by its op mix. *)

type mix = {
  loads : int;  (** loads per iteration *)
  stores : int;
  arith : int;  (** integer ALU ops per iteration *)
  fp : int;  (** scalar double ops per iteration *)
  locks : int;  (** atomic RMWs per iteration *)
}

type spec = { name : string; mix : mix; iters : int }

(** Guest program: a loop over the mix body; halts when done.
    Data lives at [0x20000 + 4KiB·tid]. *)
val to_x86 : ?tid:int -> spec -> X86.Asm.item list

(** The same kernel compiled directly to Arm host code, without guest
    fences and with native FP — what a native compiler would emit. *)
val to_arm : ?tid:int -> spec -> Arm.Insn.t array

(** Run the native Arm version and return the thread (for cycles). *)
val run_native :
  ?cost:Arm.Cost.t -> ?tid:int -> ?mem:Memsys.Mem.t -> spec ->
  Arm.Machine.thread

(** Run the guest version under a DBT config; returns the finished
    (slowest, when [threads > 1]) thread and the engine.  With several
    threads, a PARSEC-style worker team runs the same kernel
    concurrently, sharing the code cache and contending on the kernel's
    lock word. *)
val run_dbt :
  ?cost:Arm.Cost.t -> ?threads:int -> Core.Config.t -> spec ->
  Core.Engine.guest_thread * Core.Engine.t
