module I = X86.Insn
module R = X86.Reg

type kind = Digest of int | Scalar of int64
type bench = { label : string; func : string; kind : kind; calls : int }

type result = {
  bench : bench;
  qemu_cycles : int;
  risotto_cycles : int;
  native_cycles : int;
  values_agree : bool;
}

let speedup_risotto r = float_of_int r.qemu_cycles /. float_of_int r.risotto_cycles
let speedup_native r = float_of_int r.qemu_cycles /. float_of_int r.native_cycles
let clock_hz = 2.0e9

let ops_per_sec ~calls ~cycles =
  float_of_int calls /. (float_of_int cycles /. clock_hz)

let buffer_base = 0x30000L

(* Driver: call func@plt [calls] times with the benchmark's arguments,
   xor-accumulating results into R13 so values can be compared across
   configurations. *)
let driver b =
  let open X86.Asm in
  let set_args =
    match b.kind with
    | Digest len ->
        [
          Ins (I.Mov_ri (R.RDI, buffer_base));
          Ins (I.Mov_ri (R.RSI, Int64.of_int len));
        ]
    | Scalar v -> [ Ins (I.Mov_ri (R.RDI, v)) ]
  in
  [ Label "main"; Ins (I.Mov_ri (R.R13, 0L)); Ins (I.Mov_ri (R.RBP, Int64.of_int b.calls)); Label "bloop" ]
  @ set_args
  @ [
      Call_lbl (b.func ^ "@plt");
      Ins (I.Alu (I.Xor, R.R13, I.R R.RAX));
      Ins (I.Alu (I.Sub, R.RBP, I.I 1L));
      Ins (I.Cmp (R.RBP, I.I 0L));
      Jcc_lbl (I.Ne, "bloop");
      Ins I.Hlt;
    ]

let fill_buffer mem len =
  (* Deterministic non-zero contents so digests exercise real data. *)
  for i = 0 to (len / 8) - 1 do
    Memsys.Mem.store mem
      (Int64.add buffer_base (Int64.of_int (8 * i)))
      (Int64.of_int ((i * 2654435761) land 0xFFFFFF))
  done

let image b =
  Image.Gelf.build ~entry:"main"
    ~imports:[ Guest_libs.import b.func ]
    (driver b)

let run_config config b =
  let img = image b in
  let eng = Core.Engine.create config img in
  (match b.kind with
  | Digest len -> fill_buffer (Core.Engine.memory eng) len
  | Scalar _ -> ());
  let g = Core.Engine.run eng in
  (Core.Engine.cycles g, Core.Engine.reg g R.R13)

(* Analytic native baseline: the same loop compiled natively — loop
   overhead, a BL, and the native function body. *)
let native_cycles b =
  let fn =
    match Linker.Hostlib.find b.func with
    | Some fn -> fn
    | None -> invalid_arg ("Libbench: no host function " ^ b.func)
  in
  let args =
    match b.kind with
    | Digest len -> [ buffer_base; Int64.of_int len ]
    | Scalar v -> [ v ]
  in
  let per_call = 10 + fn.Linker.Hostlib.cycles args in
  b.calls * per_call

let run b =
  let qemu_cycles, qv = run_config Core.Config.qemu b in
  let risotto_cycles, rv = run_config Core.Config.risotto b in
  {
    bench = b;
    qemu_cycles;
    risotto_cycles;
    native_cycles = native_cycles b;
    values_agree = Int64.equal qv rv;
  }

let openssl =
  [
    { label = "md5-1024"; func = "md5"; kind = Digest 1024; calls = 8 };
    { label = "md5-8192"; func = "md5"; kind = Digest 8192; calls = 3 };
    { label = "rsa1024-sign"; func = "rsa1024_sign"; kind = Scalar 42L; calls = 3 };
    { label = "rsa1024-verify"; func = "rsa1024_verify"; kind = Scalar 42L; calls = 8 };
    { label = "rsa2048-sign"; func = "rsa2048_sign"; kind = Scalar 42L; calls = 2 };
    { label = "rsa2048-verify"; func = "rsa2048_verify"; kind = Scalar 42L; calls = 6 };
    { label = "sha1-1024"; func = "sha1"; kind = Digest 1024; calls = 8 };
    { label = "sha1-8192"; func = "sha1"; kind = Digest 8192; calls = 3 };
    { label = "sha256-1024"; func = "sha256"; kind = Digest 1024; calls = 8 };
    { label = "sha256-8192"; func = "sha256"; kind = Digest 8192; calls = 3 };
    { label = "sqlite"; func = "sqlite_step"; kind = Scalar 7L; calls = 6 };
  ]

let libm =
  let f name = { label = name; func = name; kind = Scalar (Int64.bits_of_float 0.5); calls = 50 } in
  [ f "sqrt"; f "exp"; f "log"; f "cos"; f "sin"; f "tan"; f "acos"; f "asin"; f "atan" ]
