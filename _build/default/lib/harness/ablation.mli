(** Ablations for the design decisions called out in DESIGN.md. *)

(** Fence merging on/off: per-benchmark cycles of the verified-mapping
    configuration with and without the merging pass.  [(name, with_merge,
    without_merge)]. *)
val fence_merge : unit -> (string * int * int) list

(** Cache-line transfer cost sweep at the contended 4-threads/1-variable
    point: [(transfer_cost, qemu_ops_s, risotto_ops_s)].  Shows the
    Qemu/Risotto convergence under contention is robust to the
    contention constant. *)
val cas_transfer_sweep : unit -> (int * float * float) list

(** Per-configuration translated-code statistics on a reference
    benchmark: [(config, dmb_count, tcg_ops_after_opt)] — the static
    counterpart of Figure 12. *)
val static_fences : string -> (string * int * int) list
