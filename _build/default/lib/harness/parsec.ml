type bench = {
  spec : Kernel.spec;
  suite : [ `Parsec | `Phoenix ];
  paper_qemu_seconds : float;
}

let b name suite secs ?(iters = 1500) loads stores arith fp locks =
  {
    spec = { Kernel.name; iters; mix = { Kernel.loads; stores; arith; fp; locks } };
    suite;
    paper_qemu_seconds = secs;
  }

(* Mixes: memory-bound benchmarks (canneal, freqmine, streamcluster)
   are load-heavy; numeric kernels (blackscholes, swaptions, facesim)
   are FP-heavy; Phoenix map-reduce kernels are integer/load mixes. *)
let all =
  [
    b "blackscholes" `Parsec 649. 4 1 6 10 0;
    b "bodytrack" `Parsec 2129. 6 2 10 4 0;
    b "canneal" `Parsec 570. 10 3 6 0 1;
    b "facesim" `Parsec 6091. 6 3 8 8 0;
    b "fluidanimate" `Parsec 1873. 8 4 10 6 1;
    b "freqmine" `Parsec 931. 14 2 6 0 0;
    b "streamcluster" `Parsec 1821. 10 2 8 6 0;
    b "swaptions" `Parsec 673. 4 2 8 8 0;
    b "vips" `Parsec 278. 6 4 12 2 0;
    b "histogram" `Phoenix 2.8 8 2 6 0 0;
    b "kmeans" `Phoenix 17. 8 2 10 4 0;
    b "linearregression" `Phoenix 1.4 6 1 8 0 0;
    b "matrixmultiply" `Phoenix 866. 8 1 6 6 0;
    b "pca" `Phoenix 245. 8 2 8 6 0;
    b "stringmatch" `Phoenix 6.2 10 1 10 0 0;
    b "wordcount" `Phoenix 4.9 8 3 8 0 0;
  ]

let find name =
  match List.find_opt (fun x -> x.spec.Kernel.name = name) all with
  | Some x -> x
  | None -> invalid_arg ("Parsec.find: " ^ name)
