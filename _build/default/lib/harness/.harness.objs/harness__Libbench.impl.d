lib/harness/libbench.ml: Core Guest_libs Image Int64 Linker Memsys X86
