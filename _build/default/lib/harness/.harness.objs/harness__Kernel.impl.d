lib/harness/kernel.ml: Arm Array Core Image Int64 List Memsys X86
