lib/harness/ablation.mli:
