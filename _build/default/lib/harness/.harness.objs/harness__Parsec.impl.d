lib/harness/parsec.ml: Kernel List
