lib/harness/parsec.mli: Kernel
