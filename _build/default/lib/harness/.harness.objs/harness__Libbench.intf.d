lib/harness/libbench.mli:
