lib/harness/kernel.mli: Arm Core Memsys X86
