lib/harness/ablation.ml: Arm Casbench Core Kernel List Parsec Tcg
