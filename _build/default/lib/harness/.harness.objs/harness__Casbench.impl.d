lib/harness/casbench.ml: Arm Array Core Image Int64 Libbench List Memsys X86
