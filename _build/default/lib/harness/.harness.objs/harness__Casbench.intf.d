lib/harness/casbench.mli: Arm
