lib/harness/figures.mli: Casbench Format Libbench Parsec
