lib/harness/guest_libs.ml: Image Int64 List X86
