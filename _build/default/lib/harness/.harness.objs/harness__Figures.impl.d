lib/harness/figures.ml: Arm Casbench Core Fmt Kernel Libbench List Mapping Parsec
