lib/harness/guest_libs.mli: Image
