module I = X86.Insn
module R = X86.Reg
open X86.Asm

let impl_label name = name ^ "@impl"
let fnv_prime = 0x100000001b3L

(* Word-at-a-time FNV digest, byte-exact with Hostlib's digest, plus
   [extra] dummy mixing ops per byte to model heavier hash rounds.
   Args: RDI = buffer, RSI = length in bytes (multiple of 8). *)
let digest_impl name ~seed ~extra =
  let per_byte =
    List.concat
      (List.init 8 (fun _ ->
           [
             Ins (I.Mov_rr (R.RDX, R.RCX));
             Ins (I.Alu (I.And, R.RDX, I.I 0xFFL));
             Ins (I.Alu (I.Imul, R.RAX, I.R R.R11));
             Ins (I.Alu (I.Add, R.RDX, I.I 1L));
             Ins (I.Alu (I.Add, R.RAX, I.R R.RDX));
             Ins (I.Alu (I.Shr, R.RCX, I.I 8L));
           ]
           @ List.init extra (fun k ->
                 Ins
                   (match k mod 3 with
                   | 0 -> I.Alu (I.Xor, R.R12, I.R R.RDX)
                   | 1 -> I.Alu (I.Shl, R.R12, I.I 1L)
                   | _ -> I.Alu (I.Add, R.R12, I.I 5L)))))
  in
  [
    Label (impl_label name);
    Ins (I.Mov_rr (R.R9, R.RDI));
    Ins (I.Mov_rr (R.R10, R.RDI));
    Ins (I.Alu (I.Add, R.R10, I.R R.RSI));
    Ins (I.Mov_ri (R.RAX, seed));
    Ins (I.Mov_ri (R.R11, fnv_prime));
    Label (name ^ "@wloop");
    Ins (I.Cmp (R.R9, I.R R.R10));
    Jcc_lbl (I.Ae, name ^ "@wend");
    Ins (I.Load (R.RCX, { base = Some R.R9; index = None; disp = 0L }));
  ]
  @ per_byte
  @ [
      Ins (I.Alu (I.Add, R.R9, I.I 8L));
      Jmp_lbl (name ^ "@wloop");
      Label (name ^ "@wend");
      Ins I.Ret;
    ]

(* Square-and-add chain, value-exact with Hostlib's rsa stand-in, with a
   dummy inner loop supplying the cost of multi-precision arithmetic.
   Arg: RDI → RAX. *)
let rsa_impl name ~inner =
  [
    Label (impl_label name);
    Ins (I.Mov_rr (R.RAX, R.RDI));
    Ins (I.Alu (I.Or, R.RAX, I.I 1L));
    Ins (I.Mov_ri (R.R11, 0x9e3779b97f4a7c15L));
    Ins (I.Mov_ri (R.R9, 16L));
    Label (name ^ "@outer");
    Ins (I.Mov_rr (R.RDX, R.RAX));
    Ins (I.Alu (I.Imul, R.RAX, I.R R.RDX));
    Ins (I.Alu (I.Add, R.RAX, I.R R.R11));
    Ins (I.Mov_ri (R.R10, Int64.of_int inner));
    Label (name ^ "@inner");
    Ins (I.Alu (I.Add, R.R12, I.I 1L));
    Ins (I.Alu (I.Sub, R.R10, I.I 1L));
    Ins (I.Cmp (R.R10, I.I 0L));
    Jcc_lbl (I.Ne, name ^ "@inner");
    Ins (I.Alu (I.Sub, R.R9, I.I 1L));
    Ins (I.Cmp (R.R9, I.I 0L));
    Jcc_lbl (I.Ne, name ^ "@outer");
    Ins I.Ret;
  ]

(* sqlite speedtest work unit: returns n+1 (host-exact) after the cost
   of parsing + B-tree work. *)
let sqlite_impl name ~inner =
  [
    Label (impl_label name);
    Ins (I.Mov_rr (R.RAX, R.RDI));
    Ins (I.Alu (I.Add, R.RAX, I.I 1L));
    Ins (I.Mov_ri (R.R10, Int64.of_int inner));
    Label (name ^ "@inner");
    Ins (I.Alu (I.Add, R.R12, I.I 3L));
    Ins (I.Alu (I.Xor, R.R12, I.R R.R10));
    Ins (I.Alu (I.Sub, R.R10, I.I 1L));
    Ins (I.Cmp (R.R10, I.I 0L));
    Jcc_lbl (I.Ne, name ^ "@inner");
    Ins I.Ret;
  ]

(* Softfloat polynomial evaluation: [n_fp] scalar-double ops, each of
   which Qemu emulates through a helper call.  Arg: RDI → RAX. *)
let poly_impl name ~n_fp =
  [ Label (impl_label name); Ins (I.Mov_rr (R.RAX, R.RDI)) ]
  @ List.init n_fp (fun k ->
        Ins (I.Fp ((if k mod 2 = 0 then I.Fmul else I.Fadd), R.RAX, R.RAX)))
  @ [ Ins I.Ret ]

let sqrt_impl name =
  [
    Label (impl_label name);
    Ins (I.Mov_rr (R.RAX, R.RDI));
    Ins (I.Fp (I.Fsqrt, R.RAX, R.RDI));
    Ins I.Ret;
  ]

(* strlen: word loads, unrolled byte scan within each word.
   Arg: RDI → RAX. *)
let strlen_impl name =
  let byte_checks =
    List.concat
      (List.init 8 (fun k ->
           [
             Ins (I.Mov_rr (R.RDX, R.RCX));
             Ins (I.Alu (I.And, R.RDX, I.I 0xFFL));
             Ins (I.Cmp (R.RDX, I.I 0L));
             Jcc_lbl (I.E, name ^ "@done");
             Ins (I.Alu (I.Add, R.RAX, I.I 1L));
           ]
           @ if k < 7 then [ Ins (I.Alu (I.Shr, R.RCX, I.I 8L)) ] else []))
  in
  [
    Label (impl_label name);
    Ins (I.Mov_ri (R.RAX, 0L));
    Ins (I.Mov_rr (R.R9, R.RDI));
    Label (name ^ "@wloop");
    Ins (I.Load (R.RCX, { base = Some R.R9; index = None; disp = 0L }));
  ]
  @ byte_checks
  @ [
      Ins (I.Alu (I.Add, R.R9, I.I 8L));
      Jmp_lbl (name ^ "@wloop");
      Label (name ^ "@done");
      Ins I.Ret;
    ]

(* memcpy(dst, src, len): word copy.  Args RDI, RSI, RDX → RAX=dst. *)
let memcpy_impl name =
  [
    Label (impl_label name);
    Ins (I.Mov_ri (R.R9, 0L));
    Label (name ^ "@loop");
    Ins (I.Cmp (R.R9, I.R R.RDX));
    Jcc_lbl (I.Ae, name ^ "@done");
    Ins (I.Mov_rr (R.R10, R.RSI));
    Ins (I.Alu (I.Add, R.R10, I.R R.R9));
    Ins (I.Load (R.RCX, { base = Some R.R10; index = None; disp = 0L }));
    Ins (I.Mov_rr (R.R10, R.RDI));
    Ins (I.Alu (I.Add, R.R10, I.R R.R9));
    Ins (I.Store ({ base = Some R.R10; index = None; disp = 0L }, I.R R.RCX));
    Ins (I.Alu (I.Add, R.R9, I.I 8L));
    Jmp_lbl (name ^ "@loop");
    Label (name ^ "@done");
    Ins (I.Mov_rr (R.RAX, R.RDI));
    Ins I.Ret;
  ]

let impls =
  [
    ("md5", digest_impl "md5" ~seed:0x6d643500L ~extra:0);
    ("sha1", digest_impl "sha1" ~seed:0x73686131L ~extra:3);
    ("sha256", digest_impl "sha256" ~seed:0x73323536L ~extra:12);
    ("rsa1024_sign", rsa_impl "rsa1024_sign" ~inner:1600);
    ("rsa1024_verify", rsa_impl "rsa1024_verify" ~inner:55);
    ("rsa2048_sign", rsa_impl "rsa2048_sign" ~inner:9800);
    ("rsa2048_verify", rsa_impl "rsa2048_verify" ~inner:170);
    ("sqlite_step", sqlite_impl "sqlite_step" ~inner:7000);
    ("sin", poly_impl "sin" ~n_fp:41);
    ("cos", poly_impl "cos" ~n_fp:41);
    ("tan", poly_impl "tan" ~n_fp:48);
    ("asin", poly_impl "asin" ~n_fp:52);
    ("acos", poly_impl "acos" ~n_fp:52);
    ("atan", poly_impl "atan" ~n_fp:48);
    ("exp", poly_impl "exp" ~n_fp:30);
    ("log", poly_impl "log" ~n_fp:30);
    ("sqrt", sqrt_impl "sqrt");
    ("strlen", strlen_impl "strlen");
    ("memcpy", memcpy_impl "memcpy");
  ]

let import name =
  match List.assoc_opt name impls with
  | Some guest_impl -> { Image.Gelf.name; guest_impl }
  | None -> invalid_arg ("Guest_libs.import: " ^ name)

let names = List.map fst impls
