(** Figures 13 and 14: shared-library benchmarks through the dynamic
    host linker.

    Each benchmark is a guest program calling one library function in a
    loop through its PLT entry.  Under [qemu] the guest implementation
    is translated; under [risotto] the PLT entry is intercepted and the
    native host function is invoked with argument marshaling; [native]
    is the analytic cost of the same loop compiled natively. *)

type kind = Digest of int  (** buffer length *) | Scalar of int64  (** argument *)

type bench = { label : string; func : string; kind : kind; calls : int }

type result = {
  bench : bench;
  qemu_cycles : int;
  risotto_cycles : int;
  native_cycles : int;
  values_agree : bool;
      (** guest and host implementations returned the same value *)
}

val speedup_risotto : result -> float
val speedup_native : result -> float

(** Model clock used to convert cycles to ops/s. *)
val clock_hz : float

val ops_per_sec : calls:int -> cycles:int -> float

(** Figure 13 benchmarks (OpenSSL digests and RSA, sqlite). *)
val openssl : bench list

(** Figure 14 benchmarks (libm). *)
val libm : bench list

val run : bench -> result
