let small spec = { spec with Kernel.iters = 400 }

let fence_merge () =
  let no_merge =
    {
      Core.Config.tcg_ver with
      Core.Config.name = "tcg-ver-nomerge";
      passes = Tcg.Pipeline.qemu_default;
    }
  in
  List.map
    (fun (b : Parsec.bench) ->
      let cycles config =
        let g, _ = Kernel.run_dbt config (small b.Parsec.spec) in
        Core.Engine.cycles g
      in
      ( b.Parsec.spec.Kernel.name,
        cycles Core.Config.tcg_ver,
        cycles no_merge ))
    Parsec.all

let cas_transfer_sweep () =
  List.map
    (fun transfer ->
      let cost = { Arm.Cost.default with Arm.Cost.line_transfer = transfer } in
      let r = Casbench.run ~cost { Casbench.threads = 4; vars = 1 } in
      (transfer, r.Casbench.qemu, r.Casbench.risotto))
    [ 35; 70; 140; 280 ]

let static_fences name =
  let b = Parsec.find name in
  List.map
    (fun config ->
      let _, eng = Kernel.run_dbt config (small b.Parsec.spec) in
      let st = Core.Engine.stats eng in
      ( config.Core.Config.name,
        st.Core.Engine.fences_emitted,
        st.Core.Engine.tcg_ops_after_opt ))
    Core.Config.all
