(** Figure 15: CAS throughput under contention.

    [threads] guest threads each run a CAS-increment loop on one of
    [vars] cache-line-separated variables (thread [t] uses variable
    [t mod vars]); contention is maximal when [vars = 1] and absent when
    [vars = threads].  Throughput is total successful CAS operations
    over the slowest thread's cycles. *)

type config = { threads : int; vars : int }

(** The paper's (threads, vars) configurations. *)
val configs : config list

type result = {
  config : config;
  qemu : float;  (** ops/s *)
  risotto : float;
  native : float;
}

val iters_per_thread : int

(** [run ?cost cfg] — [cost] overrides the cycle model (used by the
    contention-cost ablation). *)
val run : ?cost:Arm.Cost.t -> config -> result
