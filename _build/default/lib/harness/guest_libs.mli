(** Guest-side shared library implementations (x86): what Qemu
    translates when the host linker is not used.

    The digest, RSA and sqlite stand-ins compute {e exactly} the same
    values as their {!Linker.Hostlib} counterparts (so host-linking is
    observably transparent, which the tests check), while costing what
    translated software implementations cost.  The math functions are
    softfloat polynomial loops; [sqrt] is a single [sqrtsd], which Qemu
    emulates through its softfloat helper. *)

(** [import name] returns the image import (PLT + guest implementation)
    for a host-library function name. *)
val import : string -> Image.Gelf.import

(** All library functions with guest implementations. *)
val names : string list
