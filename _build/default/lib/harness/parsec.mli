(** The PARSEC 3.0 and Phoenix benchmark stand-ins of Figure 12.

    Each benchmark is represented by its instruction mix (loads, stores,
    integer, FP and atomic densities per loop iteration), chosen from the
    published characterisations of these suites; [paper_qemu_seconds] is
    the raw Qemu run time the paper reports above each bar. *)

type bench = {
  spec : Kernel.spec;
  suite : [ `Parsec | `Phoenix ];
  paper_qemu_seconds : float;
}

val all : bench list
val find : string -> bench
