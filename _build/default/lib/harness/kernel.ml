module XI = X86.Insn
module XR = X86.Reg
module A = Arm.Insn

type mix = { loads : int; stores : int; arith : int; fp : int; locks : int }
type spec = { name : string; mix : mix; iters : int }

let data_base tid = Int64.add 0x20000L (Int64.of_int (tid * 4096))

(* Registers: RBX data base, R15 loop counter, RAX/RCX/RDX/RSI work,
   R8 atomic increment, R14 lock word address base. *)
let to_x86 ?(tid = 0) spec =
  let open X86.Asm in
  let m = spec.mix in
  let body = ref [] in
  let emit i = body := Ins i :: !body in
  (* interleave loads/stores/arith round-robin for a realistic mix *)
  for k = 0 to m.loads - 1 do
    emit (XI.Load (XR.RAX, { base = Some XR.RBX; index = None; disp = Int64.of_int (8 * (k mod 16)) }))
  done;
  for k = 0 to m.stores - 1 do
    emit (XI.Store ({ base = Some XR.RBX; index = None; disp = Int64.of_int (8 * (16 + (k mod 16))) }, XI.R XR.RAX))
  done;
  for k = 0 to m.arith - 1 do
    emit
      (match k mod 4 with
      | 0 -> XI.Alu (XI.Add, XR.RCX, XI.I 3L)
      | 1 -> XI.Alu (XI.Xor, XR.RDX, XI.R XR.RCX)
      | 2 -> XI.Alu (XI.Shl, XR.RCX, XI.I 1L)
      | _ -> XI.Alu (XI.Sub, XR.RDX, XI.I 1L))
  done;
  for k = 0 to m.fp - 1 do
    emit (XI.Fp ((if k mod 2 = 0 then XI.Fmul else XI.Fadd), XR.RSI, XR.RSI))
  done;
  for _ = 0 to m.locks - 1 do
    (* xadd writes the old value back into R8: re-arm the increment. *)
    emit (XI.Mov_ri (XR.R8, 1L));
    emit (XI.Lock_xadd ({ base = Some XR.R14; index = None; disp = 0L }, XR.R8))
  done;
  [
    Label "main";
    Ins (XI.Mov_ri (XR.RBX, data_base tid));
    Ins (XI.Mov_ri (XR.R14, Int64.add (data_base tid) 1024L));
    Ins (XI.Mov_ri (XR.R15, Int64.of_int spec.iters));
    Ins (XI.Mov_ri (XR.RCX, 1L));
    Ins (XI.Mov_ri (XR.RDX, 2L));
    Ins (XI.Mov_ri (XR.R8, 1L));
    Ins (XI.Mov_ri (XR.RSI, Int64.bits_of_float 1.000001));
    Label "loop";
  ]
  @ List.rev !body
  @ [
      Ins (XI.Alu (XI.Sub, XR.R15, XI.I 1L));
      Ins (XI.Cmp (XR.R15, XI.I 0L));
      Jcc_lbl (XI.Ne, "loop");
      Ins XI.Hlt;
    ]

(* Native Arm codegen for the same kernel: registers X0 data base,
   X1 counter, X2-X5 work, X6 atomic increment, X7 lock base,
   X9/X10 scratch. *)
let to_arm ?(tid = 0) spec =
  let m = spec.mix in
  let code = ref [] in
  let emit i = code := i :: !code in
  emit (A.Movz (0, data_base tid));
  emit (A.Movz (7, Int64.add (data_base tid) 1024L));
  emit (A.Movz (1, Int64.of_int spec.iters));
  emit (A.Movz (2, 1L));
  emit (A.Movz (3, 2L));
  emit (A.Movz (6, 1L));
  emit (A.Movz (4, Int64.bits_of_float 1.000001));
  let loop_start = List.length !code in
  for k = 0 to m.loads - 1 do
    emit (A.Ldr (2, 0, Int64.of_int (8 * (k mod 16))))
  done;
  for k = 0 to m.stores - 1 do
    emit (A.Str (2, 0, Int64.of_int (8 * (16 + (k mod 16)))))
  done;
  for k = 0 to m.arith - 1 do
    emit
      (match k mod 4 with
      | 0 -> A.Alu (A.Add, 2, 2, A.I 3L)
      | 1 -> A.Alu (A.Eor, 3, 3, A.R 2)
      | 2 -> A.Alu (A.Lsl, 2, 2, A.I 1L)
      | _ -> A.Alu (A.Sub, 3, 3, A.I 1L))
  done;
  for k = 0 to m.fp - 1 do
    emit (A.Fp ((if k mod 2 = 0 then A.Fmul else A.Fadd), 4, 4, 4))
  done;
  for _ = 0 to m.locks - 1 do
    (* ldxr/stxr increment loop (what a native compiler emits for a
       relaxed fetch-add; no guest-model fences needed natively) *)
    let retry = List.length !code in
    emit (A.Ldxr (9, 7));
    emit (A.Alu (A.Add, 9, 9, A.R 6));
    emit (A.Stxr (10, 9, 7));
    emit (A.Cbnz (10, retry))
  done;
  emit (A.Alu (A.Sub, 1, 1, A.I 1L));
  emit (A.Cbnz (1, loop_start));
  emit A.Exit_halt;
  Array.of_list (List.rev !code)

let run_native ?cost ?(tid = 0) ?mem spec =
  let mem = match mem with Some m -> m | None -> Memsys.Mem.create () in
  let shared = Arm.Machine.create_shared ?cost mem in
  let t = Arm.Machine.create_thread tid in
  (match Arm.Machine.exec_block shared t (to_arm ~tid spec) with
  | Arm.Machine.Halted -> ()
  | _ -> failwith "Kernel.run_native: unexpected exit");
  t

let run_dbt ?cost ?(threads = 1) config spec =
  let image = Image.Gelf.build ~entry:"main" (to_x86 spec) in
  let eng = Core.Engine.create ?cost config image in
  if threads = 1 then
    let g = Core.Engine.run eng in
    (g, eng)
  else begin
    (* All threads execute the same kernel (PARSEC-style data-parallel
       worker team); the reported thread is the slowest one. *)
    let ts =
      List.init threads (fun tid ->
          Core.Engine.spawn eng ~tid ~entry:image.Image.Gelf.entry ())
    in
    ignore (Core.Engine.run_concurrent eng ts);
    let slowest =
      List.fold_left
        (fun a g -> if Core.Engine.cycles g > Core.Engine.cycles a then g else a)
        (List.hd ts) ts
    in
    (slowest, eng)
  end
