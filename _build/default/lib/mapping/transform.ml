open Litmus.Ast
module E = Axiom.Event

type rule =
  | Rar
  | Raw
  | Waw
  | F_rar
  | F_raw
  | F_waw
  | Fence_merge
  | Reorder
  | False_dep_elim

let rule_name = function
  | Rar -> "RAR"
  | Raw -> "RAW"
  | Waw -> "WAW"
  | F_rar -> "F-RAR"
  | F_raw -> "F-RAW"
  | F_waw -> "F-WAW"
  | Fence_merge -> "fence-merge"
  | Reorder -> "reorder"
  | False_dep_elim -> "false-dep-elim"

let all_rules =
  [ Rar; Raw; Waw; F_rar; F_raw; F_waw; Fence_merge; Reorder; False_dep_elim ]

(* ------------------------------------------------------------------ *)
(* Expression helpers                                                  *)

let rec exp_regs acc = function
  | Int _ -> acc
  | Reg r -> r :: acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Xor (a, b) | Eq (a, b) | Ne (a, b)
    ->
      exp_regs (exp_regs acc a) b

let regs_read = function
  | Load _ -> []
  | Store { value; _ } -> exp_regs [] value
  | Cas { expect; desired; _ } -> exp_regs (exp_regs [] expect) desired
  | Assign (_, e) -> exp_regs [] e
  | Fence _ -> []
  | If { cond; _ } -> exp_regs [] cond

let regs_written = function
  | Load { reg; _ } -> [ reg ]
  | Cas { reg = Some reg; _ } -> [ reg ]
  | Assign (reg, _) -> [ reg ]
  | Cas { reg = None; _ } | Store _ | Fence _ | If _ -> []

let disjoint a b = not (List.exists (fun x -> List.mem x b) a)

(* False dependency simplification: x*0 ↝ 0, x^x ↝ 0, e+0 ↝ e, ... *)
let rec simplify_exp e =
  match e with
  | Int _ | Reg _ -> e
  | Mul (a, b) -> (
      match (simplify_exp a, simplify_exp b) with
      | Int 0, _ | _, Int 0 -> Int 0
      | Int 1, x | x, Int 1 -> x
      | a, b -> Mul (a, b))
  | Xor (a, b) -> (
      match (simplify_exp a, simplify_exp b) with
      | Reg r1, Reg r2 when r1 = r2 -> Int 0
      | a, b -> Xor (a, b))
  | Add (a, b) -> (
      match (simplify_exp a, simplify_exp b) with
      | Int 0, x | x, Int 0 -> x
      | a, b -> Add (a, b))
  | Sub (a, b) -> (
      match (simplify_exp a, simplify_exp b) with
      | x, Int 0 -> x
      | Reg r1, Reg r2 when r1 = r2 -> Int 0
      | a, b -> Sub (a, b))
  | Eq (a, b) -> Eq (simplify_exp a, simplify_exp b)
  | Ne (a, b) -> Ne (simplify_exp a, simplify_exp b)

(* ------------------------------------------------------------------ *)
(* Window rewriting                                                    *)

(* All results of applying [rw] (a rewriter of list prefixes) at exactly
   one position of [code]. *)
let rec rewrite_sites rw code =
  let here = match rw code with Some code' -> [ code' ] | None -> [] in
  match code with
  | [] -> here
  | x :: rest -> here @ List.map (fun r -> x :: r) (rewrite_sites rw rest)

let is_plain_load = function
  | Load { ord = E.R_plain; _ } -> true
  | _ -> false

let is_plain_store = function
  | Store { ord = E.W_plain; _ } -> true
  | _ -> false

let o_fences = [ E.F_rm; E.F_ww ]
let tau_fences = [ E.F_sc; E.F_ww ]

let tcg_fences =
  [
    E.F_rr; E.F_rw; E.F_rm; E.F_wr; E.F_ww; E.F_wm; E.F_mr; E.F_mw; E.F_mm;
    E.F_acq; E.F_rel; E.F_sc;
  ]

let rewriter rule code =
  match (rule, code) with
  | Rar, Load ({ reg = r1; loc = l1; ord = E.R_plain } as ld1) :: Load { reg = r2; loc = l2; ord = E.R_plain } :: rest
    when l1 = l2 ->
      Some (Load ld1 :: Assign (r2, Reg r1) :: rest)
  | Raw, Store ({ loc = l1; value; ord = E.W_plain } as st1) :: Load { reg; loc = l2; ord = E.R_plain } :: rest
    when l1 = l2 ->
      Some (Store st1 :: Assign (reg, value) :: rest)
  | Waw, Store { loc = l1; ord = E.W_plain; _ } :: (Store { loc = l2; ord = E.W_plain; _ } :: _ as rest)
    when l1 = l2 ->
      Some rest
  | F_rar, Load ({ reg = r1; loc = l1; ord = E.R_plain } as ld1) :: Fence f :: Load { reg = r2; loc = l2; ord = E.R_plain } :: rest
    when l1 = l2 && List.mem f o_fences ->
      Some (Load ld1 :: Fence f :: Assign (r2, Reg r1) :: rest)
  | F_raw, Store ({ loc = l1; value; ord = E.W_plain } as st1) :: Fence f :: Load { reg; loc = l2; ord = E.R_plain } :: rest
    when l1 = l2 && List.mem f tau_fences ->
      Some (Store st1 :: Fence f :: Assign (reg, value) :: rest)
  | F_waw, Store { loc = l1; ord = E.W_plain; _ } :: Fence f :: (Store { loc = l2; ord = E.W_plain; _ } :: _ as rest)
    when l1 = l2 && List.mem f o_fences ->
      Some (Fence f :: rest)
  | Fence_merge, Fence f1 :: Fence f2 :: rest
    when List.mem f1 tcg_fences && List.mem f2 tcg_fences ->
      Some (Fence (Fence_alg.merge f1 f2) :: rest)
  | Reorder, a :: b :: rest
    when (is_plain_load a || is_plain_store a)
         && (is_plain_load b || is_plain_store b) ->
      let loc_of = function
        | Load { loc; _ } | Store { loc; _ } -> Some loc
        | _ -> None
      in
      if
        loc_of a <> loc_of b
        && disjoint (regs_written a) (regs_read b)
        && disjoint (regs_written a) (regs_written b)
        && disjoint (regs_read a) (regs_written b)
      then Some (b :: a :: rest)
      else None
  | False_dep_elim, Store ({ value; _ } as st1) :: rest ->
      let value' = simplify_exp value in
      if value' <> value then Some (Store { st1 with value = value' } :: rest)
      else None
  | _, _ -> None

let applications rule (p : prog) =
  List.concat_map
    (fun (t : thread) ->
      List.map
        (fun code' ->
          {
            p with
            name = Printf.sprintf "%s+%s" p.name (rule_name rule);
            threads =
              List.map
                (fun (t' : thread) ->
                  if t'.tid = t.tid then { t' with code = code' } else t')
                p.threads;
          })
        (rewrite_sites (rewriter rule) t.code))
    p.threads

let soundness rule p =
  let model = Axiom.Tcg_model.model in
  List.map
    (fun tgt -> Check.refines ~src_model:model ~tgt_model:model ~src:p ~tgt)
    (applications rule p)

(* ------------------------------------------------------------------ *)
(* Pattern-bearing TCG corpus                                          *)

open Litmus.Dsl

let corpus =
  [
    (* RAR in an MP reader: eliminating the second read must not let the
       reader observe an older value. *)
    ( "MP+RAR",
      prog "MP+RAR" [ ("X", 0); ("Y", 0) ]
        [
          [ st "X" 1; fence E.F_ww; st "Y" 1 ];
          [ ld "a" "Y"; ld "a2" "Y"; fence E.F_rm; ld "b" "X" ];
        ] );
    (* RAW: a reader of its own write. *)
    ( "RAW-local",
      prog "RAW-local" [ ("X", 0); ("Y", 0) ]
        [
          [ st "Y" 2; ld "a" "Y"; fence E.F_rw; st "X" 1 ];
          [ ld "b" "X"; fence E.F_rm; ld "c" "Y" ];
        ] );
    ( "WAW-local",
      prog "WAW-local" [ ("X", 0); ("Y", 0) ]
        [
          [ st "X" 1; st "X" 2; fence E.F_ww; st "Y" 1 ];
          [ ld "a" "Y"; fence E.F_rm; ld "b" "X" ];
        ] );
    ( "F-RAR",
      prog "F-RAR" [ ("X", 0); ("Y", 0) ]
        [
          [ ld "a" "X"; fence E.F_rm; ld "a2" "X"; st "Y" 1 ];
          [ ld "b" "Y"; fence E.F_rm; ld "c" "X"; st "X" 1 ];
        ] );
    ( "F-RAW-ww",
      prog "F-RAW-ww" [ ("X", 0); ("Y", 0) ]
        [
          [ st "X" 2; fence E.F_ww; ld "a" "X"; st "Y" 1 ];
          [ ld "b" "Y"; fence E.F_rm; ld "c" "X" ];
        ] );
    ( "F-RAW-sc",
      prog "F-RAW-sc" [ ("X", 0); ("Y", 0) ]
        [
          [ st "X" 2; fence E.F_sc; ld "a" "X"; st "Y" 1 ];
          [ st "Y" 2; fence E.F_sc; ld "b" "Y"; st "X" 1 ];
        ] );
    ( "F-WAW",
      prog "F-WAW" [ ("X", 0); ("Y", 0) ]
        [
          [ st "X" 1; fence E.F_ww; st "X" 2; fence E.F_ww; st "Y" 1 ];
          [ ld "a" "Y"; fence E.F_rm; ld "b" "X" ];
        ] );
    ( "merge-Frm-Fww",
      prog "merge-Frm-Fww" [ ("X", 0); ("Y", 0) ]
        [
          [ ld "a" "X"; fence E.F_rm; fence E.F_ww; st "Y" 1 ];
          [ ld "b" "Y"; fence E.F_rm; fence E.F_ww; st "X" 1 ];
        ] );
    ( "reorder-st-ld",
      prog "reorder-st-ld" [ ("X", 0); ("Y", 0) ]
        [
          [ st "X" 1; ld "a" "Y" ];
          [ st "Y" 1; ld "b" "X" ];
        ] );
    ( "false-dep",
      prog "false-dep" [ ("X", 0); ("Y", 0) ]
        [
          [ ld "a" "X"; st_e "Y" (Mul (Reg "a", Int 0)) ];
          [ ld "b" "Y"; st_e "X" (Mul (Reg "b", Int 0)) ];
        ] );
    (* The FMR program itself: RAW over Fmr is the unsound instance. *)
    ("FMR", Litmus.Catalog.fmr_tcg_src);
  ]
