(** Mapping schemes between x86, TCG IR and Arm litmus programs
    (paper Figures 2, 3 and 7).

    Each scheme is a program-to-program transformation on the
    architecture-neutral litmus AST; the refinement checker
    ({!Check.refines}) verifies Theorem 1 for each of them over the
    litmus corpus. *)

open Litmus.Ast

(** {1 x86 → TCG IR} *)

type frontend =
  | Qemu_frontend
      (** Figure 2: [Fmr; ld] and [Fmw; st]; RMW via helper (SC at IR
          level); MFENCE → Fsc. *)
  | Risotto_frontend
      (** Figure 7a: [ld; Frm] and [Fww; st]; RMW → TCG RMW;
          MFENCE → Fsc. *)
  | No_fences_frontend
      (** The (incorrect) oracle configuration: plain accesses, no
          ordering fences; RMW and MFENCE kept. *)

val x86_to_tcg : frontend -> prog -> prog

(** {1 TCG IR → Arm} *)

(** How TCG RMW operations reach Arm (paper §3.1, §6.3):
    Qemu lowers via a helper using GCC builtins whose instruction choice
    depends on the GCC version; Risotto either brackets an exclusive
    pair in DMBFFs or emits [casal] directly (Figure 7b). *)
type rmw_lowering =
  | Helper_gcc9  (** [ldaxr]/[stlxr] pair: RMW2_AL *)
  | Helper_gcc10  (** [casal]: RMW1_AL *)
  | Risotto_rmw2  (** DMBFF; RMW2; DMBFF *)
  | Risotto_rmw1  (** [casal] (needs the corrected Arm-Cats model) *)

type backend = { lowering : [ `Qemu | `Risotto ]; rmw : rmw_lowering }

val tcg_to_arm : backend -> prog -> prog

(** The Figure-7b fence lowering table (extended to the fences the Qemu
    frontend produces); [None] means no instruction is emitted. *)
val lower_fence :
  [ `Qemu | `Risotto ] -> Axiom.Event.fence -> Axiom.Event.fence option

(** {1 Composed / direct schemes} *)

(** x86 → Arm via TCG, composing the two steps. *)
val x86_to_arm : frontend -> backend -> prog -> prog

(** Figure 3: the "intended" direct mapping inferred from Arm-Cats
    (LDRQ / STRL / RMW1_AL / DMBFF) — shown incorrect under the
    original Arm-Cats model by SBAL. *)
val x86_to_arm_direct_armcats : prog -> prog

(** {1 Presets} *)

(** Qemu as shipped (Figure 2, helper with GCC 10 → casal). *)
val qemu_preset : frontend * backend

(** Risotto with the verified mappings, RMW2 bracketed in DMBFFs. *)
val risotto_rmw2_preset : frontend * backend

(** Risotto with direct casal translation (§6.3). *)
val risotto_casal_preset : frontend * backend

(** Rows of the mapping tables for regeneration of Figures 1, 2, 3, 7. *)
val figure1_rows : (string * string * string * string) list

val figure2_rows : (string * string * string) list

val figure3_rows : (string * string) list
val figure7a_rows : (string * string) list
val figure7b_rows : (string * string) list
val figure7c_rows : (string * string * string) list
