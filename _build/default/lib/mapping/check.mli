(** Executable Theorem 1 (paper §5.4): a transformation from source
    program [Ps] in model [Ms] to target [Pt] in [Mt] is correct if every
    consistent target behaviour is a consistent source behaviour.

    This module checks behaviour inclusion by exhaustive enumeration —
    the executable counterpart of the paper's Agda proofs, applied to the
    litmus corpus. *)

type report = {
  name : string;
  ok : bool;
  src_behaviours : int;
  tgt_behaviours : int;
  extra : Litmus.Enumerate.behaviour list;
      (** target behaviours with no source counterpart (the bug
          witnesses when [not ok]) *)
}

val refines :
  src_model:Axiom.Model.t ->
  tgt_model:Axiom.Model.t ->
  src:Litmus.Ast.prog ->
  tgt:Litmus.Ast.prog ->
  report

(** [check_scheme ~name f ~src_model ~tgt_model corpus] maps every
    corpus program through [f] and checks refinement. *)
val check_scheme :
  name:string ->
  (Litmus.Ast.prog -> Litmus.Ast.prog) ->
  src_model:Axiom.Model.t ->
  tgt_model:Axiom.Model.t ->
  (string * Litmus.Ast.prog) list ->
  report list

val all_ok : report list -> bool
val pp_report : Format.formatter -> report -> unit
