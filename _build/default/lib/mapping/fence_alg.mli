(** The lattice of TCG IR fences.

    A TCG fence is characterised by the set of ordered access pairs it
    enforces ([rr], [rw], [wr], [ww]), plus acquire/release markers and
    the SC flag of [Fsc].  Fence merging (paper §5.4 and §6.1) is the
    join in this lattice:

    {v  Frm · Fww  ─strengthen→  Fsc · Fsc  ─merge→  Fsc  v}

    (the paper strengthens to [Fsc]; the precise join of [Frm] and [Fww]
    is [Fmw] ∪ {rr} = a fence ordering rr, rw and ww, for which the
    minimal TCG kind is [Fmm]; [merge] returns the weakest TCG fence at
    least as strong as the join). *)

type t = {
  rr : bool;
  rw : bool;
  wr : bool;
  ww : bool;
  acq : bool;
  rel : bool;
  sc : bool;
}

val of_fence : Axiom.Event.fence -> t

(** The weakest TCG fence whose strength dominates [t].  Total: [Fsc]
    dominates everything. *)
val to_tcg_fence : t -> Axiom.Event.fence

val join : t -> t -> t
val leq : t -> t -> bool

(** [merge f1 f2] is the single TCG fence equivalent to the adjacent
    pair [f1; f2]. *)
val merge : Axiom.Event.fence -> Axiom.Event.fence -> Axiom.Event.fence

(** [subsumes f1 f2]: an [f1] fence enforces at least the orderings of
    [f2] (so an adjacent [f2] is redundant). *)
val subsumes : Axiom.Event.fence -> Axiom.Event.fence -> bool
