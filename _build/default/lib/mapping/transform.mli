(** The IR transformations of paper §5.4 / Figure 10 as syntactic
    rewrites on (TCG-level) litmus programs:

    {v
    R(X,v) · R(X,v')        ↝ R(X,v)            (RAR)
    W(X,v) · R(X,v)         ↝ W(X,v)            (RAW)
    W(X,v) · W(X,v')        ↝ W(X,v')           (WAW)
    R(X,v) · Fo · R(X,v')   ↝ R(X,v) · Fo       (F-RAR)   o ∈ {rm,ww}
    W(X,v) · Fτ · R(X,v)    ↝ W(X,v) · Fτ       (F-RAW)   τ ∈ {sc,ww}
    W(X,v) · Fo · W(X,v')   ↝ Fo · W(X,v')      (F-WAW)   o ∈ {rm,ww}
    v}

    plus fence merging, reordering of independent accesses, and false
    dependency elimination (§6.1).  Each rule application site yields a
    candidate target program; soundness is established by checking
    Theorem-1 refinement under the TCG model on both sides.

    The Figure-10 rules are sound on programs free of [Fmr]/[Fwr]
    fences — which the verified x86→IR scheme guarantees (§4.1).  On the
    FMR program (which contains an [Fmr]) the plain [Raw] rule is
    {e unsound}: applying it reproduces the paper's §3.2 counterexample,
    and {!soundness} reports the violation. *)

type rule =
  | Rar
  | Raw
  | Waw
  | F_rar
  | F_raw
  | F_waw
  | Fence_merge
  | Reorder
  | False_dep_elim

val rule_name : rule -> string
val all_rules : rule list

(** All programs obtained by applying the rule at one site. *)
val applications : rule -> Litmus.Ast.prog -> Litmus.Ast.prog list

(** Check every application of [rule] on [prog] for refinement under
    the TCG model; returns one report per application site. *)
val soundness : rule -> Litmus.Ast.prog -> Check.report list

(** TCG-level programs exhibiting each rule's pattern in racy contexts,
    used by the tests and the verification report. *)
val corpus : (string * Litmus.Ast.prog) list
