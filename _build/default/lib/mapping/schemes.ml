open Litmus.Ast
module E = Axiom.Event

type frontend = Qemu_frontend | Risotto_frontend | No_fences_frontend

let x86_to_tcg frontend p =
  let map_one i =
    match (frontend, i) with
    | _, If _ | _, Assign _ -> [ i ]
    | Qemu_frontend, Load { reg; loc; _ } ->
        [ Fence E.F_mr; Load { reg; loc; ord = E.R_plain } ]
    | Qemu_frontend, Store { loc; value; _ } ->
        [ Fence E.F_mw; Store { loc; value; ord = E.W_plain } ]
    | Qemu_frontend, Cas c -> [ Cas { c with kind = Rmw_tcg } ]
    | Qemu_frontend, Fence E.F_mfence -> [ Fence E.F_sc ]
    | Risotto_frontend, Load { reg; loc; _ } ->
        [ Load { reg; loc; ord = E.R_plain }; Fence E.F_rm ]
    | Risotto_frontend, Store { loc; value; _ } ->
        [ Fence E.F_ww; Store { loc; value; ord = E.W_plain } ]
    | Risotto_frontend, Cas c -> [ Cas { c with kind = Rmw_tcg } ]
    | Risotto_frontend, Fence E.F_mfence -> [ Fence E.F_sc ]
    | No_fences_frontend, Load { reg; loc; _ } ->
        [ Load { reg; loc; ord = E.R_plain } ]
    | No_fences_frontend, Store { loc; value; _ } ->
        [ Store { loc; value; ord = E.W_plain } ]
    | No_fences_frontend, Cas c -> [ Cas { c with kind = Rmw_tcg } ]
    | No_fences_frontend, Fence E.F_mfence -> [ Fence E.F_sc ]
    | _, Fence f -> [ Fence f ]
  in
  map_instrs map_one { p with name = p.name ^ "→tcg" }

type rmw_lowering = Helper_gcc9 | Helper_gcc10 | Risotto_rmw2 | Risotto_rmw1
type backend = { lowering : [ `Qemu | `Risotto ]; rmw : rmw_lowering }

(* Figure 7b fence lowering, extended to the fences the Qemu frontend
   produces.  Qemu demotes the Fmr it inserts before loads to a DMBLD:
   this drops the (x86-unneeded) W→R component, mirroring Qemu's
   demotion of Fmr to Frr for TSO guests (§3.1). *)
let lower_fence lowering = function
  | E.F_rr | E.F_rw | E.F_rm -> Some E.F_dmb_ld
  | E.F_ww -> Some E.F_dmb_st
  | E.F_wr | E.F_wm | E.F_mm | E.F_sc -> Some E.F_dmb_full
  | E.F_mw -> Some E.F_dmb_full
  | E.F_mr -> (
      match lowering with `Qemu -> Some E.F_dmb_ld | `Risotto -> Some E.F_dmb_full)
  | E.F_acq | E.F_rel -> None
  | E.F_mfence -> Some E.F_dmb_full
  | (E.F_dmb_full | E.F_dmb_ld | E.F_dmb_st) as f -> Some f

let lower_rmw rmw ~reg ~loc ~expect ~desired =
  let cas kind = Cas { reg; loc; expect; desired; kind } in
  match rmw with
  | Helper_gcc9 -> [ cas (Rmw_arm { impl = Lxsx; acq = true; rel = true }) ]
  | Helper_gcc10 | Risotto_rmw1 ->
      [ cas (Rmw_arm { impl = Amo; acq = true; rel = true }) ]
  | Risotto_rmw2 ->
      [
        Fence E.F_dmb_full;
        cas (Rmw_arm { impl = Lxsx; acq = false; rel = false });
        Fence E.F_dmb_full;
      ]

let tcg_to_arm (b : backend) p =
  let map_one i =
    match i with
    | If _ | Assign _ -> [ i ]
    | Load { reg; loc; _ } -> [ Load { reg; loc; ord = E.R_plain } ]
    | Store { loc; value; _ } -> [ Store { loc; value; ord = E.W_plain } ]
    | Cas { reg; loc; expect; desired; kind = _ } ->
        lower_rmw b.rmw ~reg ~loc ~expect ~desired
    | Fence f -> (
        match lower_fence b.lowering f with Some f' -> [ Fence f' ] | None -> [])
  in
  map_instrs map_one { p with name = p.name ^ "→arm" }

let x86_to_arm frontend backend p = tcg_to_arm backend (x86_to_tcg frontend p)

let x86_to_arm_direct_armcats p =
  let map_one i =
    match i with
    | If _ | Assign _ -> [ i ]
    | Load { reg; loc; _ } -> [ Load { reg; loc; ord = E.R_acq_pc } ]
    | Store { loc; value; _ } -> [ Store { loc; value; ord = E.W_rel } ]
    | Cas c ->
        [ Cas { c with kind = Rmw_arm { impl = Amo; acq = true; rel = true } } ]
    | Fence E.F_mfence -> [ Fence E.F_dmb_full ]
    | Fence f -> [ Fence f ]
  in
  map_instrs map_one { p with name = p.name ^ "→arm-cats" }

let qemu_preset = (Qemu_frontend, { lowering = `Qemu; rmw = Helper_gcc10 })

let risotto_rmw2_preset =
  (Risotto_frontend, { lowering = `Risotto; rmw = Risotto_rmw2 })

let risotto_casal_preset =
  (Risotto_frontend, { lowering = `Risotto; rmw = Risotto_rmw1 })

(* Figure 1: concurrency primitives per architecture. *)
let figure1_rows =
  [
    ("Load", "RMOV", "ld", "LDR");
    ("Store", "WMOV", "st", "STR");
    ("Full-fence", "MFENCE", "Fsc", "DMBFF");
    ("WW-fence", "", "Fww", "DMBST");
    ("RM-fence", "", "Frm", "DMBLD");
    ("MW-fence", "", "Fmw", "");
    ("Atomic-update", "RMW", "RMW", "RMW1, RMW2");
    ("Rel.Acq. atomic-update", "", "", "RMW1_AL, RMW2_AL");
  ]

let figure2_rows =
  [
    ("RMOV", "Fmr; ld", "DMBLD; LDR");
    ("WMOV", "Fmw; st", "DMBFF; STR");
    ("RMW", "call", "BLR; RMW; RET");
    ("MFENCE", "Fsc", "DMBFF");
  ]

let figure3_rows =
  [
    ("RMOV", "LDRQ");
    ("WMOV", "STRL");
    ("RMW", "RMW1_AL");
    ("MFENCE", "DMBFF");
  ]

let figure7a_rows =
  [
    ("RMOV", "ld; Frm");
    ("WMOV", "Fww; st");
    ("RMW", "RMW");
    ("MFENCE", "Fsc");
  ]

let figure7b_rows =
  [
    ("ld", "LDR");
    ("st", "STR");
    ("RMW", "DMBFF; RMW2; DMBFF or RMW1_AL");
    ("Frr/Frw/Frm", "DMBLD");
    ("Fww", "DMBST");
    ("Fwr/Fmm/Fsc", "DMBFF");
    ("Facq/Frel", "-");
  ]

let figure7c_rows =
  [
    ("RMOV", "ld; Frm", "LDR; DMBLD");
    ("WMOV", "Fww; st", "DMBST; STR");
    ("RMW", "RMW", "DMBFF; RMW2; DMBFF or RMW1_AL");
    ("MFENCE", "Fsc", "DMBFF");
  ]
