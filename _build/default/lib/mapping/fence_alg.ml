module E = Axiom.Event

type t = {
  rr : bool;
  rw : bool;
  wr : bool;
  ww : bool;
  acq : bool;
  rel : bool;
  sc : bool;
}

let none =
  { rr = false; rw = false; wr = false; ww = false; acq = false; rel = false; sc = false }

let of_fence = function
  | E.F_rr -> { none with rr = true }
  | E.F_rw -> { none with rw = true }
  | E.F_rm -> { none with rr = true; rw = true }
  | E.F_wr -> { none with wr = true }
  | E.F_ww -> { none with ww = true }
  | E.F_wm -> { none with wr = true; ww = true }
  | E.F_mr -> { none with rr = true; wr = true }
  | E.F_mw -> { none with rw = true; ww = true }
  | E.F_mm -> { none with rr = true; rw = true; wr = true; ww = true }
  | E.F_acq -> { none with acq = true }
  | E.F_rel -> { none with rel = true }
  | E.F_sc ->
      { rr = true; rw = true; wr = true; ww = true; acq = true; rel = true; sc = true }
  | E.F_mfence ->
      (* x86 MFENCE maps to Fsc in the IR (Figure 7a). *)
      { rr = true; rw = true; wr = true; ww = true; acq = true; rel = true; sc = true }
  | E.F_dmb_full ->
      { rr = true; rw = true; wr = true; ww = true; acq = true; rel = true; sc = false }
  | E.F_dmb_ld -> { none with rr = true; rw = true }
  | E.F_dmb_st -> { none with ww = true }

let join a b =
  {
    rr = a.rr || b.rr;
    rw = a.rw || b.rw;
    wr = a.wr || b.wr;
    ww = a.ww || b.ww;
    acq = a.acq || b.acq;
    rel = a.rel || b.rel;
    sc = a.sc || b.sc;
  }

let leq a b =
  (not a.rr || b.rr)
  && (not a.rw || b.rw)
  && (not a.wr || b.wr)
  && (not a.ww || b.ww)
  && (not a.acq || b.acq)
  && (not a.rel || b.rel)
  && ((not a.sc) || b.sc)

(* Candidate TCG kinds from weakest to strongest. *)
let tcg_kinds =
  [
    E.F_rr;
    E.F_rw;
    E.F_wr;
    E.F_ww;
    E.F_acq;
    E.F_rel;
    E.F_rm;
    E.F_wm;
    E.F_mr;
    E.F_mw;
    E.F_mm;
    E.F_sc;
  ]

let strength f =
  List.length
    (List.filter Fun.id [ f.rr; f.rw; f.wr; f.ww; f.acq; f.rel; f.sc ])

let to_tcg_fence t =
  let candidates =
    List.filter (fun k -> leq t (of_fence k)) tcg_kinds
  in
  match
    List.sort
      (fun a b -> compare (strength (of_fence a)) (strength (of_fence b)))
      candidates
  with
  | k :: _ -> k
  | [] -> E.F_sc

let merge f1 f2 = to_tcg_fence (join (of_fence f1) (of_fence f2))
let subsumes f1 f2 = leq (of_fence f2) (of_fence f1)
