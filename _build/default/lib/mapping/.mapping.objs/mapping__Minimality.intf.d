lib/mapping/minimality.mli: Axiom Format Litmus
