lib/mapping/fence_alg.mli: Axiom
