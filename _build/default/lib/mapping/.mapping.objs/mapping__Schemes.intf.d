lib/mapping/schemes.mli: Axiom Litmus
