lib/mapping/check.mli: Axiom Format Litmus
