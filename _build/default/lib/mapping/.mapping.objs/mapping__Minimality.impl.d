lib/mapping/minimality.ml: Axiom Check Fmt List Litmus Printf
