lib/mapping/schemes.ml: Axiom Litmus
