lib/mapping/transform.ml: Axiom Check Fence_alg List Litmus Printf
