lib/mapping/fence_alg.ml: Axiom Fun List
