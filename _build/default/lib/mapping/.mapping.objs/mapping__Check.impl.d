lib/mapping/check.ml: Fmt List Litmus Printf
