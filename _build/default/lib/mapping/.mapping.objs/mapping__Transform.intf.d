lib/mapping/transform.mli: Check Litmus
