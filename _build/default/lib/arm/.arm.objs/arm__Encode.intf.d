lib/arm/encode.mli: Buffer Insn
