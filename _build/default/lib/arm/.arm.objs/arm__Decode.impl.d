lib/arm/decode.ml: Array Char Insn Int64 List Printf String
