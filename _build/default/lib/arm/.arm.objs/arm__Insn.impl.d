lib/arm/insn.ml: Fmt
