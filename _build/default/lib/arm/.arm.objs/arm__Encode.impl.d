lib/arm/encode.ml: Array Buffer Char Insn Int64 List String
