lib/arm/decode.mli: Insn
