lib/arm/cost.mli:
