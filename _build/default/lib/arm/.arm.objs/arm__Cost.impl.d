lib/arm/cost.ml:
