lib/arm/machine.ml: Array Buffer Cost Hashtbl Insn Int64 List Memsys
