lib/arm/machine.mli: Buffer Cost Insn Memsys
