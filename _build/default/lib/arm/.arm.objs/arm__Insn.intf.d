lib/arm/insn.mli: Format
