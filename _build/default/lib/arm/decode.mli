(** Inverse of {!Encode} (round-trip tested). *)

exception Bad_encoding of int * string

(** [decode_block s pos] decodes a block, returning it and the position
    after it. *)
val decode_block : string -> int -> Insn.t array * int

val block_of_string : string -> Insn.t array
