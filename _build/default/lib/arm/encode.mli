(** Serialization of Arm code blocks.

    A compact binary format for translated code buffers — one opcode
    byte plus operands, with branch targets as instruction indices and
    helper names inline.  This is the storage format of the persistent
    translation cache (cf. the translation-caching systems discussed in
    the paper's related work); {!Decode} is the exact inverse. *)

val encode_insn : Buffer.t -> Insn.t -> unit

(** Encode a whole block (instruction count followed by instructions). *)
val encode_block : Buffer.t -> Insn.t array -> unit

val block_to_string : Insn.t array -> string
