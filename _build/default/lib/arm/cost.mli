(** Cycle cost model for the Arm subset.

    Calibrated to the qualitative structure reported for ThunderX2-class
    cores (cf. Liu et al., "No Barrier in the Road", PPoPP'20, the
    paper's [51]): a full DMB is far more expensive than DMB.LD, which is
    more expensive than DMB.ST; back-to-back barriers are almost free
    because the pipeline is already drained (this is what makes fence
    {e merging} profitable); contended atomics pay a cache-line transfer.

    All figures are in (model) cycles; the evaluation harness reports
    ratios, so only the relative structure matters. *)

type t = {
  base : int;  (** simple ALU / mov *)
  mul : int;
  ldr : int;
  str : int;
  dmb_full : int;
  dmb_ld : int;
  dmb_st : int;
  dmb_chained : int;  (** a DMB immediately after another DMB *)
  acq_rel_extra : int;  (** extra cost of LDAR/LDAPR/STLR over LDR/STR *)
  excl : int;  (** LDXR or STXR *)
  cas : int;  (** uncontended CAS instruction *)
  line_transfer : int;  (** cache-line ownership transfer on atomics *)
  branch : int;
  fp : int;  (** native scalar double op *)
  helper_call : int;  (** BLR + spill + RET round trip into a helper *)
  host_call : int;  (** call into a native shared library *)
  marshal_per_arg : int;  (** per-argument guest↔host marshaling (§6.2) *)
}

val default : t
