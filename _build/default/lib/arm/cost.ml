type t = {
  base : int;
  mul : int;
  ldr : int;
  str : int;
  dmb_full : int;
  dmb_ld : int;
  dmb_st : int;
  dmb_chained : int;
  acq_rel_extra : int;
  excl : int;
  cas : int;
  line_transfer : int;
  branch : int;
  fp : int;
  helper_call : int;
  host_call : int;
  marshal_per_arg : int;
}

let default =
  {
    base = 1;
    mul = 4;
    ldr = 4;
    str = 4;
    dmb_full = 16;
    dmb_ld = 14;
    dmb_st = 5;
    dmb_chained = 4;
    acq_rel_extra = 4;
    excl = 8;
    cas = 20;
    line_transfer = 70;
    branch = 2;
    fp = 5;
    helper_call = 24;
    host_call = 12;
    marshal_per_arg = 35;
  }
