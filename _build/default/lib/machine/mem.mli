(** Shared word-addressable memory for the guest/host machines.

    Addresses are byte addresses; accesses are 64-bit words on 8-byte
    aligned addresses (the subset ISAs only generate aligned accesses).
    Also tracks per-cache-line ownership, used by the CAS contention
    cost model (paper §7.4): an atomic by a thread that does not own the
    line pays a transfer penalty. *)

type t

val create : unit -> t
val load : t -> int64 -> int64
val store : t -> int64 -> int64 -> unit

(** Byte access (used by the image loader for .data-like content). *)
val load_byte : t -> int64 -> int

val store_byte : t -> int64 -> int -> unit

(** [owner m addr] is the id of the thread owning [addr]'s cache line,
    or [None] if untouched. *)
val owner : t -> int64 -> int option

(** [acquire_line m addr ~tid] makes [tid] the owner; returns [true]
    when this required a transfer (previous owner was another thread). *)
val acquire_line : t -> int64 -> tid:int -> bool

(** Number of distinct threads that have performed atomic accesses to
    [addr]'s cache line — drives the contention cost model. *)
val sharers : t -> int64 -> int

val clear : t -> unit

(** Snapshot of all (addr, value) pairs, sorted — for tests. *)
val dump : t -> (int64 * int64) list
