lib/machine/mem.mli:
