lib/machine/mem.ml: Hashtbl Int64 List
