type t = {
  words : (int64, int64) Hashtbl.t;
  owners : (int64, int) Hashtbl.t;  (* cache line (addr/64) -> tid *)
  line_sharers : (int64, int list) Hashtbl.t;  (* line -> tids seen *)
}

let create () =
  {
    words = Hashtbl.create 1024;
    owners = Hashtbl.create 64;
    line_sharers = Hashtbl.create 64;
  }

let word_addr addr = Int64.logand addr (Int64.lognot 7L)

let load m addr =
  match Hashtbl.find_opt m.words (word_addr addr) with
  | Some v -> v
  | None -> 0L

let store m addr v = Hashtbl.replace m.words (word_addr addr) v

let load_byte m addr =
  let w = load m addr in
  let shift = 8 * Int64.to_int (Int64.rem addr 8L) in
  Int64.to_int (Int64.logand (Int64.shift_right_logical w shift) 0xFFL)

let store_byte m addr b =
  let w = load m addr in
  let shift = 8 * Int64.to_int (Int64.rem addr 8L) in
  let mask = Int64.shift_left 0xFFL shift in
  let w' =
    Int64.logor
      (Int64.logand w (Int64.lognot mask))
      (Int64.shift_left (Int64.of_int (b land 0xFF)) shift)
  in
  store m addr w'

let line addr = Int64.div addr 64L
let owner m addr = Hashtbl.find_opt m.owners (line addr)

let sharers m addr =
  match Hashtbl.find_opt m.line_sharers (line addr) with
  | Some l -> List.length l
  | None -> 0

let acquire_line m addr ~tid =
  let l = line addr in
  (match Hashtbl.find_opt m.line_sharers l with
  | Some ts when List.mem tid ts -> ()
  | Some ts -> Hashtbl.replace m.line_sharers l (tid :: ts)
  | None -> Hashtbl.replace m.line_sharers l [ tid ]);
  match Hashtbl.find_opt m.owners l with
  | Some t when t = tid -> false
  | Some _ ->
      Hashtbl.replace m.owners l tid;
      true
  | None ->
      Hashtbl.replace m.owners l tid;
      false

let clear m =
  Hashtbl.reset m.words;
  Hashtbl.reset m.owners;
  Hashtbl.reset m.line_sharers

let dump m =
  Hashtbl.fold (fun a v acc -> (a, v) :: acc) m.words []
  |> List.sort compare
