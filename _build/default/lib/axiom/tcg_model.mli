(** The TCG IR concurrency model proposed by the paper (Figure 6):

    {v
    (GOrd)  ghb = (ord ∪ rfe ∪ coe ∪ fre)⁺ is irreflexive
    ord     = [R];po;[Frr];po;[R] ∪ [R];po;[Frw];po;[W]
            ∪ [R];po;[Frm];po;[R∪W] ∪ [W];po;[Fwr];po;[R]
            ∪ [W];po;[Fww];po;[W] ∪ [W];po;[Fwm];po;[R∪W]
            ∪ [R∪W];po;[Fmr];po;[R] ∪ [R∪W];po;[Fmw];po;[W]
            ∪ [R∪W];po;[Fmm];po;[R∪W]
            ∪ po;[Wsc ∪ dom(rmw)] ∪ [Rsc ∪ codom(rmw)];po
            ∪ po;[Fsc] ∪ [Fsc];po
    v}

    plus the common SC-per-location and atomicity axioms.  TCG [Facq] and
    [Frel] fences generate events but no [ord] edges (they lower to
    nothing on Arm, Figure 7b). *)

val model : Model.t

(** The [ord] relation of Figure 6, exposed for diagnostics. *)
val ord : Execution.t -> Relalg.Rel.t

val ghb : Execution.t -> Relalg.Rel.t

(** [ghb] before transitive closure (informative cycles). *)
val ghb_base : Execution.t -> Relalg.Rel.t
