(** The Arm-Cats AArch64 axiomatic model (paper Figure 5, after Alglave
    et al. [6]), in two variants:

    - [Original]: the published model, whose [bob] contains
      [po; [A]; amo; [L]; po] — the paper shows (§3.3, SBAL) this is too
      weak for [casal] to emulate an x86 RMW.
    - [Corrected]: the strengthening proposed by the paper and accepted
      upstream, replacing that clause with
      [po; [dom([A]; amo; [L])] ∪ [codom([A]; amo; [L])]; po],
      which makes a successful acquire-release single-copy-atomic RMW act
      as a full barrier. *)

type variant = Original | Corrected

val model : variant -> Model.t

(** [ob x variant] — the ordered-before relation, for diagnostics. *)
val ob : variant -> Execution.t -> Relalg.Rel.t

(** Locally-ordered-before, for diagnostics. *)
val lob : variant -> Execution.t -> Relalg.Rel.t

(** [ob] before transitive closure (informative cycles). *)
val ob_base : variant -> Execution.t -> Relalg.Rel.t
