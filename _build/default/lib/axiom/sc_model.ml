open Relalg

let consistent x =
  Model.common x
  && Rel.acyclic
       (Rel.union_all [ x.Execution.po; x.Execution.rf; x.Execution.co; Execution.fr x ])

let model = { Model.name = "SC"; consistent }
