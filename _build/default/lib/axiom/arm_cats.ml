open Relalg

type variant = Original | Corrected

(* lws: local write successor — a memory event ordered to a po-later
   same-location write. *)
let lws x =
  let w = Execution.writes x in
  let m = Execution.mems x in
  Rel.restrict m (Execution.po_loc x) w

(* dob: dependency-ordered-before.  Litmus programs here produce data and
   ctrl (and optionally addr) dependencies. *)
let dob x =
  let po = x.Execution.po in
  let w = Execution.writes x in
  let data = x.Execution.data
  and addr = x.Execution.addr
  and ctrl = x.Execution.ctrl in
  let ctrl_w = Rel.compose ctrl (Rel.id w) in
  let addr_po_w = Rel.compose addr (Rel.compose po (Rel.id w)) in
  let dep_rfi = Rel.compose (Rel.union addr data) (Execution.rfi x) in
  Rel.union_all [ addr; data; ctrl_w; addr_po_w; dep_rfi ]

(* aob: atomic-ordered-before. *)
let aob x =
  let rmw = Execution.rmw x in
  let aq = Iset.union (Execution.acq_reads x) (Execution.acq_pc_reads x) in
  Rel.union rmw
    (Rel.compose (Rel.id (Rel.codomain rmw))
       (Rel.compose (Execution.rfi x) (Rel.id aq)))

(* bob: barrier-ordered-before (Figure 5, including the standard
   acquire/release clauses elided by the paper's "∪ ···"). *)
let bob variant x =
  let po = x.Execution.po in
  let r = Execution.reads x and w = Execution.writes x in
  let f = Execution.fences x Event.F_dmb_full in
  let fld = Execution.fences x Event.F_dmb_ld in
  let fst_ = Execution.fences x Event.F_dmb_st in
  let a = Execution.acq_reads x in
  let q = Execution.acq_pc_reads x in
  let l = Execution.rel_writes x in
  let seq rs = Rel.sequence rs in
  let base =
    [
      seq [ po; Rel.id f; po ];
      seq [ Rel.id r; po; Rel.id fld; po ];
      seq [ Rel.id w; po; Rel.id fst_; po; Rel.id w ];
      (* Acquire / acquirePC reads order with their po-successors. *)
      seq [ Rel.id (Iset.union a q); po ];
      (* Release writes order with their po-predecessors. *)
      seq [ po; Rel.id l ];
      (* A release is ordered with a later acquire. *)
      seq [ Rel.id l; po; Rel.id a ];
    ]
  in
  (* The amo clause: [A]; amo; [L] are the acquire-release
     single-instruction RMWs (e.g. casal). *)
  let amo_al =
    Rel.sequence [ Rel.id a; x.Execution.amo; Rel.id l ]
  in
  let amo_clause =
    match variant with
    | Original -> [ seq [ po; amo_al; po ] ]
    | Corrected ->
        [
          Rel.compose po (Rel.id (Rel.domain amo_al));
          Rel.compose (Rel.id (Rel.codomain amo_al)) po;
        ]
  in
  Rel.union_all (base @ amo_clause)

let lob variant x =
  Rel.transitive_closure
    (Rel.union_all [ lws x; dob x; aob x; bob variant x ])

let ob_base variant x =
  Rel.union_all
    [ Execution.rfe x; Execution.coe x; Execution.fre x; lob variant x ]

let ob variant x = Rel.transitive_closure (ob_base variant x)

let consistent variant x = Model.common x && Rel.irreflexive (ob variant x)

let model variant =
  let name =
    match variant with
    | Original -> "Arm-Cats (original)"
    | Corrected -> "Arm-Cats (corrected)"
  in
  { Model.name; consistent = consistent variant }
