open Relalg

type t = { name : string; consistent : Execution.t -> bool }

let sc_per_loc x =
  Rel.acyclic
    (Rel.union_all [ Execution.po_loc x; x.Execution.rf; x.Execution.co; Execution.fr x ])

let atomicity x =
  let fre_coe = Rel.compose (Execution.fre x) (Execution.coe x) in
  Rel.is_empty (Rel.inter (Execution.rmw x) fre_coe)

let common x = sc_per_loc x && atomicity x
