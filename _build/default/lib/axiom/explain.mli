(** Diagnostics: why is an execution inconsistent?

    For each model, checks its axioms in order and reports the first
    violated one with a witness cycle — the herd-style answer to "why is
    this outcome forbidden?". *)

type which = Sc | X86 | Arm of Arm_cats.variant | Tcg

type verdict =
  | Consistent
  | Violates of { axiom : string; cycle : int list }
      (** [cycle] is a list of event ids; consecutive (and last→first)
          events are related by the axiom's relation. *)

val check : which -> Execution.t -> verdict
val model_of : which -> Model.t
val pp_verdict : Execution.t -> Format.formatter -> verdict -> unit
