(** The x86-TSO axiomatic model (paper §5.2, after Owens et al. and
    Alglave et al.):

    {v
    (GHB)  (implied ∪ ppo ∪ rfe ∪ fr ∪ co)⁺ is irreflexive
    ppo     = ((W×W) ∪ (R×W) ∪ (R×R)) ∩ po
    implied = po; [At ∪ F] ∪ [At ∪ F]; po
    At      = dom(rmw) ∪ codom(rmw)
    v}

    plus the common SC-per-location and atomicity axioms. *)

val model : Model.t

(** The GHB relation itself, exposed for diagnostics. *)
val ghb : Execution.t -> Relalg.Rel.t

(** GHB before transitive closure (informative cycles). *)
val ghb_base : Execution.t -> Relalg.Rel.t
