lib/axiom/event.ml: Fmt
