lib/axiom/x86_tso.ml: Event Execution Iset Model Rel Relalg
