lib/axiom/execution.mli: Event Format Iset Rel Relalg
