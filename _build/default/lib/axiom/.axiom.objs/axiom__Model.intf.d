lib/axiom/model.mli: Execution
