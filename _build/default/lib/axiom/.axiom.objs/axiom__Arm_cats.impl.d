lib/axiom/arm_cats.ml: Event Execution Iset Model Rel Relalg
