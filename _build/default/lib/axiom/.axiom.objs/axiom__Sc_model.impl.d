lib/axiom/sc_model.ml: Execution Model Rel Relalg
