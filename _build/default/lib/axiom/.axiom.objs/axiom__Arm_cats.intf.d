lib/axiom/arm_cats.mli: Execution Model Relalg
