lib/axiom/x86_tso.mli: Execution Model Relalg
