lib/axiom/tcg_model.mli: Execution Model Relalg
