lib/axiom/event.mli: Format
