lib/axiom/tcg_model.ml: Event Execution Iset Model Rel Relalg
