lib/axiom/explain.ml: Arm_cats Event Execution Fmt List Rel Relalg Sc_model Tcg_model X86_tso
