lib/axiom/explain.mli: Arm_cats Execution Format Model
