lib/axiom/execution.ml: Event Fmt Format Iset List Printf Rel Relalg String
