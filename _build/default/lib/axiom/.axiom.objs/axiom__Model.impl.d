lib/axiom/model.ml: Execution Rel Relalg
