lib/axiom/sc_model.mli: Model
