(** Executions: event graphs ⟨E, po, rf, co⟩ plus RMW pairing and
    syntactic dependency relations (paper §5.1).

    Initialisation writes are explicit events with [Event.init_tid]; they
    are not [po]-related to anything and are [co]-minimal per location. *)

open Relalg

type t = {
  events : Event.t list;
  po : Rel.t;  (** program order, strict, per thread *)
  rf : Rel.t;  (** reads-from: write → read, same loc / value *)
  co : Rel.t;  (** coherence: strict total order per location on writes *)
  rmw_plain : Rel.t;  (** x86 LOCK / TCG RMW read→write pairs *)
  amo : Rel.t;  (** Arm single-instruction RMW pairs (e.g. [casal]) *)
  lxsx : Rel.t;  (** Arm load-exclusive / store-exclusive pairs *)
  data : Rel.t;  (** data dependencies read → write *)
  ctrl : Rel.t;  (** control dependencies read → later events *)
  addr : Rel.t;  (** address dependencies read → memory access *)
}

val empty : t
val find : t -> int -> Event.t

(** {1 Event sets} *)

val all : t -> Iset.t
val reads : t -> Iset.t
val writes : t -> Iset.t
val mems : t -> Iset.t
val fences : t -> Event.fence -> Iset.t
val fences_any : t -> Iset.t

(** Arm acquire reads ([LDAR]/[LDAXR]). *)
val acq_reads : t -> Iset.t

(** Arm acquirePC reads ([LDAPR]). *)
val acq_pc_reads : t -> Iset.t

(** Arm release writes ([STLR]/[STLXR]). *)
val rel_writes : t -> Iset.t

(** TCG SC reads / writes (from RMW operations). *)
val sc_reads : t -> Iset.t

val sc_writes : t -> Iset.t

(** All RMW pairs: [rmw_plain ∪ amo ∪ lxsx]. *)
val rmw : t -> Rel.t

(** {1 Derived relations} *)

val po_loc : t -> Rel.t
val fr : t -> Rel.t
val rfe : t -> Rel.t
val rfi : t -> Rel.t
val coe : t -> Rel.t
val coi : t -> Rel.t
val fre : t -> Rel.t
val fri : t -> Rel.t

(** [same_tid x e1 e2]: non-init events of one thread (po or po⁻¹). *)
val internal : t -> int -> int -> bool

(** {1 Well-formedness}

    Checks: rf sources are writes with matching location and value and
    every read has exactly one source; co is a strict total order per
    location with init writes first; rmw pairs are immediate-po related
    same-location read/write pairs. *)
val well_formed : t -> (unit, string) result

(** {1 Behaviour}

    Final value of each location: the value of its co-maximal write
    (paper's [Behav]).  Sorted by location name. *)
val behaviour : t -> (string * int) list

val pp : Format.formatter -> t -> unit
