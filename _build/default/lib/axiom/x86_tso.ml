open Relalg

let ghb_base x =
  let po = x.Execution.po in
  let r = Execution.reads x and w = Execution.writes x in
  let ppo =
    Rel.inter
      (Rel.union_all [ Rel.cross w w; Rel.cross r w; Rel.cross r r ])
      po
  in
  let rmw = Execution.rmw x in
  let at = Iset.union (Rel.domain rmw) (Rel.codomain rmw) in
  let at_f = Iset.union at (Execution.fences x Event.F_mfence) in
  let implied =
    Rel.union (Rel.compose po (Rel.id at_f)) (Rel.compose (Rel.id at_f) po)
  in
  Rel.union_all
    [ implied; ppo; Execution.rfe x; Execution.fr x; x.Execution.co ]

let ghb x = Rel.transitive_closure (ghb_base x)
let consistent x = Model.common x && Rel.irreflexive (ghb x)
let model = { Model.name = "x86-TSO"; consistent }
