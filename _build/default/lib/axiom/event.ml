type read_ord = R_plain | R_acq | R_acq_pc | R_sc
type write_ord = W_plain | W_rel | W_sc

type fence =
  | F_mfence
  | F_dmb_full
  | F_dmb_ld
  | F_dmb_st
  | F_rr
  | F_rw
  | F_rm
  | F_wr
  | F_ww
  | F_wm
  | F_mr
  | F_mw
  | F_mm
  | F_acq
  | F_rel
  | F_sc

type label =
  | Read of { loc : string; value : int; ord : read_ord }
  | Write of { loc : string; value : int; ord : write_ord }
  | Fence of fence

type t = { id : int; tid : int; label : label }

let init_tid = -1
let is_init e = e.tid = init_tid
let is_read e = match e.label with Read _ -> true | Write _ | Fence _ -> false
let is_write e = match e.label with Write _ -> true | Read _ | Fence _ -> false
let is_mem e = is_read e || is_write e
let is_fence e = match e.label with Fence _ -> true | Read _ | Write _ -> false

let is_fence_kind k e =
  match e.label with Fence f -> f = k | Read _ | Write _ -> false

let loc e =
  match e.label with
  | Read { loc; _ } | Write { loc; _ } -> Some loc
  | Fence _ -> None

let value e =
  match e.label with
  | Read { value; _ } | Write { value; _ } -> Some value
  | Fence _ -> None

let read_ord e = match e.label with Read { ord; _ } -> Some ord | _ -> None
let write_ord e = match e.label with Write { ord; _ } -> Some ord | _ -> None

let fence_name = function
  | F_mfence -> "MFENCE"
  | F_dmb_full -> "DMB.FULL"
  | F_dmb_ld -> "DMB.LD"
  | F_dmb_st -> "DMB.ST"
  | F_rr -> "Frr"
  | F_rw -> "Frw"
  | F_rm -> "Frm"
  | F_wr -> "Fwr"
  | F_ww -> "Fww"
  | F_wm -> "Fwm"
  | F_mr -> "Fmr"
  | F_mw -> "Fmw"
  | F_mm -> "Fmm"
  | F_acq -> "Facq"
  | F_rel -> "Frel"
  | F_sc -> "Fsc"

let pp_fence ppf f = Fmt.string ppf (fence_name f)

let read_ord_name = function
  | R_plain -> ""
  | R_acq -> "^acq"
  | R_acq_pc -> "^q"
  | R_sc -> "^sc"

let write_ord_name = function W_plain -> "" | W_rel -> "^rel" | W_sc -> "^sc"

let pp_label ppf = function
  | Read { loc; value; ord } -> Fmt.pf ppf "R%s %s=%d" (read_ord_name ord) loc value
  | Write { loc; value; ord } ->
      Fmt.pf ppf "W%s %s=%d" (write_ord_name ord) loc value
  | Fence f -> pp_fence ppf f

let pp ppf e = Fmt.pf ppf "e%d[T%d: %a]" e.id e.tid pp_label e.label
