(** Sequential consistency: [(po ∪ rf ∪ co ∪ fr)] acyclic.  Used as a
    reference model in tests. *)

val model : Model.t
