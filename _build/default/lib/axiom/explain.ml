open Relalg

type which = Sc | X86 | Arm of Arm_cats.variant | Tcg

type verdict = Consistent | Violates of { axiom : string; cycle : int list }

let model_of = function
  | Sc -> Sc_model.model
  | X86 -> X86_tso.model
  | Arm v -> Arm_cats.model v
  | Tcg -> Tcg_model.model

let coherence_rel x =
  Rel.union_all
    [ Execution.po_loc x; x.Execution.rf; x.Execution.co; Execution.fr x ]

let check which x =
  let try_axiom name rel k =
    match Rel.find_cycle rel with
    | Some cycle -> Violates { axiom = name; cycle }
    | None -> k ()
  in
  let atomicity () =
    let bad = Rel.inter (Execution.rmw x) (Rel.compose (Execution.fre x) (Execution.coe x)) in
    match Rel.to_list bad with
    | (r, w) :: _ -> Violates { axiom = "atomicity"; cycle = [ r; w ] }
    | [] -> Consistent
  in
  try_axiom "sc-per-loc (coherence)" (coherence_rel x) @@ fun () ->
  let global () =
    match which with
    | Sc ->
        try_axiom "sequential consistency (po ∪ rf ∪ co ∪ fr)"
          (Rel.union_all
             [ x.Execution.po; x.Execution.rf; x.Execution.co; Execution.fr x ])
          (fun () -> atomicity ())
    | X86 -> try_axiom "x86 (GHB)" (X86_tso.ghb_base x) (fun () -> atomicity ())
    | Arm v ->
        try_axiom "Arm (external: ob)" (Arm_cats.ob_base v x) (fun () ->
            atomicity ())
    | Tcg ->
        try_axiom "TCG (GOrd: ghb)" (Tcg_model.ghb_base x) (fun () ->
            atomicity ())
  in
  global ()

let pp_verdict x ppf = function
  | Consistent -> Fmt.string ppf "consistent"
  | Violates { axiom; cycle } ->
      Fmt.pf ppf "violates %s via cycle:@," axiom;
      List.iter
        (fun id -> Fmt.pf ppf "    %a@," Event.pp (Execution.find x id))
        cycle
