open Relalg

let ord x =
  let po = x.Execution.po in
  let r = Execution.reads x and w = Execution.writes x in
  let m = Iset.union r w in
  let f k = Execution.fences x k in
  let fence_clause before kind after =
    Rel.sequence [ Rel.id before; po; Rel.id (f kind); po; Rel.id after ]
  in
  let rmw = Execution.rmw x in
  let rsc = Execution.sc_reads x and wsc = Execution.sc_writes x in
  let sc_before = Iset.union wsc (Rel.domain rmw) in
  let sc_after = Iset.union rsc (Rel.codomain rmw) in
  let fsc = f Event.F_sc in
  Rel.union_all
    [
      fence_clause r Event.F_rr r;
      fence_clause r Event.F_rw w;
      fence_clause r Event.F_rm m;
      fence_clause w Event.F_wr r;
      fence_clause w Event.F_ww w;
      fence_clause w Event.F_wm m;
      fence_clause m Event.F_mr r;
      fence_clause m Event.F_mw w;
      fence_clause m Event.F_mm m;
      Rel.compose po (Rel.id sc_before);
      Rel.compose (Rel.id sc_after) po;
      Rel.compose po (Rel.id fsc);
      Rel.compose (Rel.id fsc) po;
    ]

let ghb_base x =
  Rel.union_all [ ord x; Execution.rfe x; Execution.coe x; Execution.fre x ]

let ghb x = Rel.transitive_closure (ghb_base x)

let consistent x = Model.common x && Rel.irreflexive (ghb x)
let model = { Model.name = "TCG-IR"; consistent }
