(** Consistency models and the axioms common to x86, Arm and TCG IR
    (paper §5.2): SC-per-location (coherence) and RMW atomicity. *)

type t = {
  name : string;
  consistent : Execution.t -> bool;
      (** Does the execution satisfy every axiom of the model? *)
}

(** Coherence: [(po-loc ∪ rf ∪ co ∪ fr)] is acyclic. *)
val sc_per_loc : Execution.t -> bool

(** Atomicity: [rmw ∩ (fre; coe) = ∅]. *)
val atomicity : Execution.t -> bool

(** Both common axioms. *)
val common : Execution.t -> bool
