open Relalg

type t = {
  events : Event.t list;
  po : Rel.t;
  rf : Rel.t;
  co : Rel.t;
  rmw_plain : Rel.t;
  amo : Rel.t;
  lxsx : Rel.t;
  data : Rel.t;
  ctrl : Rel.t;
  addr : Rel.t;
}

let empty =
  {
    events = [];
    po = Rel.empty;
    rf = Rel.empty;
    co = Rel.empty;
    rmw_plain = Rel.empty;
    amo = Rel.empty;
    lxsx = Rel.empty;
    data = Rel.empty;
    ctrl = Rel.empty;
    addr = Rel.empty;
  }

let find x id =
  match List.find_opt (fun (e : Event.t) -> e.id = id) x.events with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Execution.find: no event %d" id)

let select p x =
  List.fold_left
    (fun acc (e : Event.t) -> if p e then Iset.add e.id acc else acc)
    Iset.empty x.events

let all x = select (fun _ -> true) x
let reads x = select Event.is_read x
let writes x = select Event.is_write x
let mems x = select Event.is_mem x
let fences x k = select (Event.is_fence_kind k) x
let fences_any x = select Event.is_fence x
let acq_reads x = select (fun e -> Event.read_ord e = Some Event.R_acq) x
let acq_pc_reads x = select (fun e -> Event.read_ord e = Some Event.R_acq_pc) x
let rel_writes x = select (fun e -> Event.write_ord e = Some Event.W_rel) x
let sc_reads x = select (fun e -> Event.read_ord e = Some Event.R_sc) x
let sc_writes x = select (fun e -> Event.write_ord e = Some Event.W_sc) x
let rmw x = Rel.union_all [ x.rmw_plain; x.amo; x.lxsx ]

let same_loc x a b =
  match (Event.loc (find x a), Event.loc (find x b)) with
  | Some la, Some lb -> la = lb
  | _ -> false

let po_loc x = Rel.filter (same_loc x) x.po

(* fr = rf⁻¹; co *)
let fr x = Rel.compose (Rel.inverse x.rf) x.co

let internal x a b =
  let ea = find x a and eb = find x b in
  ea.tid = eb.tid && not (Event.is_init ea)

let external_part x r = Rel.filter (fun a b -> not (internal x a b)) r
let internal_part x r = Rel.filter (internal x) r
let rfe x = external_part x x.rf
let rfi x = internal_part x x.rf
let coe x = external_part x x.co
let coi x = internal_part x x.co
let fre x = external_part x (fr x)
let fri x = internal_part x (fr x)

let well_formed x =
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let* () =
    (* Every read has exactly one rf source, matching loc and value. *)
    List.fold_left
      (fun acc (e : Event.t) ->
        let* () = acc in
        if not (Event.is_read e) then Ok ()
        else
          let srcs = Iset.to_list (Rel.preds x.rf e.id) in
          match srcs with
          | [ w ] ->
              let we = find x w in
              if not (Event.is_write we) then err "rf source %d is not a write" w
              else if Event.loc we <> Event.loc e then
                err "rf source %d has wrong location for read %d" w e.id
              else if Event.value we <> Event.value e then
                err "rf source %d has wrong value for read %d" w e.id
              else Ok ()
          | [] -> err "read %d has no rf source" e.id
          | _ -> err "read %d has several rf sources" e.id)
      (Ok ()) x.events
  in
  let* () =
    (* co is a strict total order per location, init writes first. *)
    let locs =
      List.filter_map (fun e -> if Event.is_write e then Event.loc e else None)
        x.events
      |> List.sort_uniq String.compare
    in
    List.fold_left
      (fun acc l ->
        let* () = acc in
        let ws =
          select (fun e -> Event.is_write e && Event.loc e = Some l) x
        in
        if not (Rel.is_strict_total_order_on ws (Rel.restrict ws x.co ws)) then
          err "co is not a strict total order on %s" l
        else
          let inits = Iset.filter (fun w -> Event.is_init (find x w)) ws in
          let non_inits = Iset.diff ws inits in
          if
            Iset.for_all
              (fun i -> Iset.for_all (fun w -> Rel.mem i w x.co) non_inits)
              inits
          then Ok ()
          else err "an init write of %s is not co-minimal" l)
      (Ok ()) locs
  in
  let* () =
    (* rmw pairs: immediate-po, same-location read/write. *)
    Rel.fold
      (fun r w acc ->
        let* () = acc in
        let er = find x r and ew = find x w in
        if not (Event.is_read er && Event.is_write ew) then
          err "rmw pair (%d,%d) is not read→write" r w
        else if not (same_loc x r w) then
          err "rmw pair (%d,%d) not same-location" r w
        else if not (Rel.mem r w x.po) then err "rmw pair (%d,%d) not po" r w
        else Ok ())
      (rmw x) (Ok ())
  in
  Ok ()

let behaviour x =
  let ws = writes x in
  let finals =
    Iset.fold
      (fun w acc ->
        (* co-maximal: no same-location co-successor. *)
        if Iset.is_empty (Rel.succs x.co w) then
          let e = find x w in
          match (Event.loc e, Event.value e) with
          | Some l, Some v -> (l, v) :: acc
          | _ -> acc
        else acc)
      ws []
  in
  List.sort compare finals

let pp ppf x =
  Fmt.pf ppf "@[<v>events:@,%a@,po=%a@,rf=%a@,co=%a@]"
    (Fmt.list ~sep:Fmt.cut Event.pp)
    x.events Rel.pp x.po Rel.pp x.rf Rel.pp x.co
