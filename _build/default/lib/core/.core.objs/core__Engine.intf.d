lib/core/engine.mli: Arm Config Image Linker Logs Memsys Tcg X86
