lib/core/engine.ml: Arm Array Backend Buffer Char Config Frontend Hashtbl Helpers Image Int64 Linker List Logs Memsys Printf Queue String Tcg X86
