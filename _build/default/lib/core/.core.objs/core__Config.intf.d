lib/core/config.mli: Tcg
