lib/core/helpers.ml: Arm Buffer Char Int64 Linker List Memsys
