lib/core/backend.mli: Arm Config Tcg
