lib/core/frontend.mli: Config Image Linker Tcg
