lib/core/backend.ml: Arm Array Axiom Config Hashtbl Int64 List Mapping Option Tcg
