lib/core/frontend.ml: Axiom Config Image Int64 Linker List Printf Tcg X86
