lib/core/config.ml: Tcg
