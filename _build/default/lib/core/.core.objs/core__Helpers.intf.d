lib/core/helpers.mli: Arm
