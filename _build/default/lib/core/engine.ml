let log_src = Logs.Src.create "risotto.engine" ~doc:"Risotto DBT engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type stats = {
  mutable blocks_translated : int;
  mutable cache_hits : int;
  mutable lookups : int;
  mutable fences_emitted : int;
  mutable tcg_ops_before_opt : int;
  mutable tcg_ops_after_opt : int;
  mutable chained : int;  (** block exits whose target was already cached *)
}

type t = {
  config : Config.t;
  image : Image.Gelf.t;
  links : Linker.Link.t;
  frontend : Frontend.t;
  mem : Memsys.Mem.t;
  shared : Arm.Machine.shared;
  code_cache : (int64, Arm.Insn.t array) Hashtbl.t;
  tcg_cache : (int64, Tcg.Block.t) Hashtbl.t;
  stats : stats;
  pending_spawns : (int * int64 * int64) Queue.t;  (* tid, entry, arg *)
  next_tid : int ref;
}

type guest_thread = {
  arm : Arm.Machine.thread;
  mutable pc : int64;
  mutable finished : bool;
}

let create ?cost ?idl config image =
  (* Default IDL: everything the host library provides (when the linker
     is enabled).  Pass [~idl:[]] explicitly to link nothing. *)
  let idl =
    match idl with
    | Some sigs -> sigs
    | None ->
        if config.Config.host_linker then
          Linker.Idl.parse Linker.Hostlib.idl_text
        else []
  in
  let links = Linker.Link.resolve image idl in
  let mem = Memsys.Mem.create () in
  let shared = Arm.Machine.create_shared ?cost mem in
  let pending_spawns = Queue.create () in
  let next_tid = ref 0 in
  Helpers.register_all
    ~on_clone:(fun ~entry ~arg ->
      let tid = !next_tid in
      incr next_tid;
      Queue.push (tid, entry, arg) pending_spawns;
      Int64.of_int tid)
    shared;
  let t = {
    config;
    image;
    links;
    frontend = Frontend.create config image links;
    mem;
    shared;
    code_cache = Hashtbl.create 64;
    tcg_cache = Hashtbl.create 64;
    stats =
      {
        blocks_translated = 0;
        cache_hits = 0;
        lookups = 0;
        fences_emitted = 0;
        tcg_ops_before_opt = 0;
        tcg_ops_after_opt = 0;
        chained = 0;
      };
    pending_spawns;
    next_tid;
  }
  in
  t

let config t = t.config
let memory t = t.mem
let stats t = t.stats
let links t = t.links
let stack_top tid = Int64.sub 0x8000_0000L (Int64.of_int (tid * 0x10000))

let translate t pc =
  let raw = Frontend.translate t.frontend pc in
  Log.info (fun m ->
      m "translate tb@0x%Lx: %d guest insns -> %d tcg ops" pc
        raw.Tcg.Block.guest_insns (Tcg.Block.op_count raw));
  let optimized = Tcg.Pipeline.run t.config.Config.passes raw in
  let code = Backend.compile t.config optimized in
  t.stats.blocks_translated <- t.stats.blocks_translated + 1;
  t.stats.tcg_ops_before_opt <-
    t.stats.tcg_ops_before_opt + Tcg.Block.op_count raw;
  t.stats.tcg_ops_after_opt <-
    t.stats.tcg_ops_after_opt + Tcg.Block.op_count optimized;
  t.stats.fences_emitted <-
    t.stats.fences_emitted
    + Array.fold_left
        (fun n i -> match i with Arm.Insn.Dmb _ -> n + 1 | _ -> n)
        0 code;
  Hashtbl.replace t.tcg_cache pc optimized;
  Hashtbl.replace t.code_cache pc code;
  code

let lookup_block t pc =
  t.stats.lookups <- t.stats.lookups + 1;
  match Hashtbl.find_opt t.code_cache pc with
  | Some code ->
      t.stats.cache_hits <- t.stats.cache_hits + 1;
      code
  | None -> translate t pc

let tcg_block t pc =
  ignore (lookup_block t pc);
  Hashtbl.find t.tcg_cache pc

let spawn t ~tid ~entry ?(regs = []) () =
  t.next_tid := max !(t.next_tid) (tid + 1);
  let arm = Arm.Machine.create_thread tid in
  arm.Arm.Machine.regs.(X86.Reg.index X86.Reg.RSP) <- stack_top tid;
  List.iter
    (fun (r, v) -> arm.Arm.Machine.regs.(X86.Reg.index r) <- v)
    regs;
  { arm; pc = entry; finished = false }

(* Threads created by the guest's clone syscall since the last drain. *)
let drain_spawns t =
  let spawned = ref [] in
  while not (Queue.is_empty t.pending_spawns) do
    let tid, entry, arg = Queue.pop t.pending_spawns in
    let g = spawn t ~tid ~entry ~regs:[ (X86.Reg.RDI, arg) ] () in
    spawned := g :: !spawned
  done;
  List.rev !spawned

let step_block t g =
  if not g.finished then begin
    let code = lookup_block t g.pc in
    Log.debug (fun m ->
        m "T%d exec tb@0x%Lx (%d host insns)" g.arm.Arm.Machine.tid g.pc
          (Array.length code));
    match Arm.Machine.exec_block t.shared g.arm code with
    | Arm.Machine.Next_tb pc ->
        (* A static exit whose target is already translated would be
           patched into a direct jump by a chaining DBT: count it. *)
        if Hashtbl.mem t.code_cache pc then t.stats.chained <- t.stats.chained + 1;
        g.pc <- pc
    | Arm.Machine.Jump pc -> g.pc <- pc
    | Arm.Machine.Halted ->
        Log.debug (fun m -> m "T%d halted" g.arm.Arm.Machine.tid);
        g.finished <- true
  end

(* Round-robin at block granularity; guest clone syscalls may add
   threads between rounds. *)
let run_concurrent ?(max_blocks = 50_000_000) t threads =
  let all = ref threads in
  let n = ref 0 in
  let live () = List.exists (fun g -> not g.finished) !all in
  while live () && !n < max_blocks do
    List.iter
      (fun g ->
        if not g.finished then begin
          incr n;
          step_block t g
        end)
      !all;
    match drain_spawns t with
    | [] -> ()
    | spawned -> all := !all @ spawned
  done;
  !all

let run_thread ?max_blocks t g = ignore (run_concurrent ?max_blocks t [ g ])

let run ?max_blocks ?regs t =
  let g = spawn t ~tid:0 ~entry:t.image.Image.Gelf.entry ?regs () in
  run_thread ?max_blocks t g;
  g

let reg g r = g.arm.Arm.Machine.regs.(X86.Reg.index r)
let cycles g = g.arm.Arm.Machine.cycles

(* ------------------------------------------------------------------ *)
(* Persistent translation cache: translated host code keyed by guest
   pc, reusable across runs (cf. the translation-caching systems in the
   paper's related work, e.g. WOW64).  The cache is only valid for the
   configuration that produced it. *)

let cache_magic = "RSTC1\n"

let save_cache t path =
  let oc = open_out_bin path in
  let b = Buffer.create 4096 in
  Buffer.add_string b cache_magic;
  Buffer.add_char b (Char.chr (String.length t.config.Config.name));
  Buffer.add_string b t.config.Config.name;
  let entries =
    Hashtbl.fold (fun pc code acc -> (pc, code) :: acc) t.code_cache []
    |> List.sort compare
  in
  Buffer.add_string b (Printf.sprintf "%08d" (List.length entries));
  List.iter
    (fun (pc, code) ->
      Buffer.add_string b (Printf.sprintf "%016Lx" pc);
      Arm.Encode.encode_block b code)
    entries;
  output_string oc (Buffer.contents b);
  close_out oc;
  List.length entries

exception Bad_cache of string

let load_cache t path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let pos = ref 0 in
  let take n =
    if !pos + n > String.length s then raise (Bad_cache "truncated");
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  if take (String.length cache_magic) <> cache_magic then
    raise (Bad_cache "bad magic");
  let name_len = Char.code (take 1).[0] in
  let name = take name_len in
  if name <> t.config.Config.name then
    raise
      (Bad_cache
         (Printf.sprintf "cache was built for config %S, engine runs %S" name
            t.config.Config.name));
  let count = int_of_string (take 8) in
  for _ = 1 to count do
    let pc = Int64.of_string ("0x" ^ take 16) in
    let code, pos' = Arm.Decode.decode_block s !pos in
    pos := pos';
    Hashtbl.replace t.code_cache pc code
  done;
  count
