(** The DBT backend: lowers an (optimized) TCG block to Arm host code,
    applying the Figure-7b fence lowering and the configured RMW
    strategy.

    Register convention: TCG globals 0–15 (guest GP registers) are
    pinned to X0–X15; the lazy-flag globals to X16/X17; block-local
    temps are linear-scan allocated in X19–X28; X29/X30 are backend
    scratch. *)

exception Register_pressure of int64

val compile : Config.t -> Tcg.Block.t -> Arm.Insn.t array
