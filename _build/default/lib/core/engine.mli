(** The Risotto execution engine (Figure 4): translation-block cache,
    execution loop, guest threads and statistics.

    Guest GP registers live pinned in host registers X0–X15; guest
    threads share the guest memory and the code cache, and are scheduled
    round-robin at translation-block granularity. *)

type stats = {
  mutable blocks_translated : int;
  mutable cache_hits : int;
  mutable lookups : int;
  mutable fences_emitted : int;  (** DMBs in translated code *)
  mutable tcg_ops_before_opt : int;
  mutable tcg_ops_after_opt : int;
  mutable chained : int;
      (** static block exits whose target was already translated — the
          directly-patchable jumps a chaining DBT would use *)
}

(** Engine log source ([risotto.engine]): [info] logs translations,
    [debug] traces every executed block. *)
val log_src : Logs.src

type t

type guest_thread = {
  arm : Arm.Machine.thread;
  mutable pc : int64;
  mutable finished : bool;
}

(** Create an engine.  [idl] defaults to the full host-library IDL when
    the config enables the linker; pass [~idl:[]] to disable linking of
    everything. *)
val create :
  ?cost:Arm.Cost.t -> ?idl:Linker.Idl.signature list -> Config.t ->
  Image.Gelf.t -> t

val config : t -> Config.t
val memory : t -> Memsys.Mem.t
val stats : t -> stats
val links : t -> Linker.Link.t

(** Lowest address of the default stack area; thread [tid] gets the
    64 KiB below [stack_top tid]. *)
val stack_top : int -> int64

(** Create a guest thread starting at [entry]; [regs] preloads guest
    registers. *)
val spawn :
  t -> tid:int -> entry:int64 -> ?regs:(X86.Reg.t * int64) list -> unit ->
  guest_thread

(** Translate (or fetch from cache) the block at an address. *)
val lookup_block : t -> int64 -> Arm.Insn.t array

(** The optimized TCG block at an address (for inspection). *)
val tcg_block : t -> int64 -> Tcg.Block.t

(** Execute one translation block of the thread. *)
val step_block : t -> guest_thread -> unit

(** Run a thread until it halts (or the block budget is exhausted). *)
val run_thread : ?max_blocks:int -> t -> guest_thread -> unit

(** Round-robin over the threads (at translation-block granularity)
    until all halt.  Threads the guest creates through the clone
    syscall (56) join the rotation; the returned list includes them.
    Guest syscalls: 1 write, 56 clone(fn, arg), 60 exit, 186 gettid. *)
val run_concurrent :
  ?max_blocks:int -> t -> guest_thread list -> guest_thread list

(** Convenience: spawn a single thread at the image entry, run it, and
    return it. *)
val run : ?max_blocks:int -> ?regs:(X86.Reg.t * int64) list -> t -> guest_thread

(** Guest register value of a thread. *)
val reg : guest_thread -> X86.Reg.t -> int64

val cycles : guest_thread -> int

(** {1 Persistent translation cache}

    Translated code can be saved after a run and reloaded by a later
    engine with the same configuration, skipping retranslation (cf. the
    caching translators in the paper's related work). *)

exception Bad_cache of string

(** Returns the number of blocks written. *)
val save_cache : t -> string -> int

(** Returns the number of blocks loaded.  Raises {!Bad_cache} when the
    file is corrupt or was produced by a different configuration. *)
val load_cache : t -> string -> int
