(** The DBT frontend: decodes guest x86 instructions at a pc and emits a
    TCG translation block, applying the configured memory-model mapping
    scheme (Figure 2 or Figure 7a) to every shared-memory access.

    When the host linker is active and the pc is a resolved PLT entry,
    the frontend instead emits the marshaled native call sequence of
    Figure 11 (steps 4–5). *)

type t = {
  config : Config.t;
  image : Image.Gelf.t;
  links : Linker.Link.t;
}

val create : Config.t -> Image.Gelf.t -> Linker.Link.t -> t

(** Maximum guest instructions per translation block. *)
val max_block_insns : int

val translate : t -> int64 -> Tcg.Block.t
