(** Two-pass assembler for the x86 subset with symbolic labels.

    Produces the encoded byte image, the symbol table, and the
    per-address instruction listing. *)

type item =
  | Label of string
  | Ins of Insn.t
  | Jmp_lbl of string
  | Jcc_lbl of Insn.cc * string
  | Call_lbl of string
  | Mov_lbl of Reg.t * string  (** [mov r, $label-address] *)

exception Undefined_label of string
exception Duplicate_label of string

type assembled = {
  org : int64;  (** address of the first byte *)
  code : string;  (** encoded text section *)
  listing : (int64 * Insn.t) list;  (** address → instruction *)
  symbols : (string * int64) list;  (** label → address *)
}

val assemble : ?org:int64 -> item list -> assembled

(** Address of a label. *)
val symbol : assembled -> string -> int64

val pp_listing : Format.formatter -> assembled -> unit
