type t =
  | RAX
  | RBX
  | RCX
  | RDX
  | RSI
  | RDI
  | RBP
  | RSP
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

let all =
  [ RAX; RBX; RCX; RDX; RSI; RDI; RBP; RSP; R8; R9; R10; R11; R12; R13; R14; R15 ]

let index = function
  | RAX -> 0
  | RBX -> 1
  | RCX -> 2
  | RDX -> 3
  | RSI -> 4
  | RDI -> 5
  | RBP -> 6
  | RSP -> 7
  | R8 -> 8
  | R9 -> 9
  | R10 -> 10
  | R11 -> 11
  | R12 -> 12
  | R13 -> 13
  | R14 -> 14
  | R15 -> 15

let of_index i =
  match List.nth_opt all i with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Reg.of_index: %d" i)

let name = function
  | RAX -> "rax"
  | RBX -> "rbx"
  | RCX -> "rcx"
  | RDX -> "rdx"
  | RSI -> "rsi"
  | RDI -> "rdi"
  | RBP -> "rbp"
  | RSP -> "rsp"
  | R8 -> "r8"
  | R9 -> "r9"
  | R10 -> "r10"
  | R11 -> "r11"
  | R12 -> "r12"
  | R13 -> "r13"
  | R14 -> "r14"
  | R15 -> "r15"

let pp ppf r = Fmt.string ppf (name r)
