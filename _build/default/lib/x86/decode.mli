(** Decoder for the x86 subset encoding — the DBT frontend's first
    stage.  Inverse of {!Encode}. *)

exception Bad_encoding of int64 * string

(** [decode text ~pc ~base] decodes the instruction at guest address
    [pc]; [base] is the guest address of [text]'s first byte.  Returns
    the instruction and its encoded length. *)
val decode : string -> pc:int64 -> base:int64 -> Insn.t * int
