lib/x86/decode.mli: Insn
