lib/x86/asm.ml: Buffer Encode Fmt Hashtbl Insn Int64 List Reg
