lib/x86/parse.mli: Asm Insn
