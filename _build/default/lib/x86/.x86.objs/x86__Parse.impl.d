lib/x86/parse.ml: Asm Format Insn Int64 List Option Reg String
