lib/x86/interp.ml: Array Buffer Char Decode Insn Int64 Memsys Reg
