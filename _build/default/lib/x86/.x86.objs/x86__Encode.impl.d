lib/x86/encode.ml: Buffer Char Insn Int32 Int64 Printf Reg
