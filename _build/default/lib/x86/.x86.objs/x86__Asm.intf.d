lib/x86/asm.mli: Format Insn Reg
