lib/x86/reg.ml: Fmt List Printf
