lib/x86/decode.ml: Char Insn Int32 Int64 Printf Reg String
