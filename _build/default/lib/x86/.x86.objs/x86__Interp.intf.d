lib/x86/interp.mli: Buffer Insn Memsys
