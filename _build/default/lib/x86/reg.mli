(** x86-64 general-purpose registers. *)

type t =
  | RAX
  | RBX
  | RCX
  | RDX
  | RSI
  | RDI
  | RBP
  | RSP
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

val all : t list

(** Encoding index, 0–15. *)
val index : t -> int

val of_index : int -> t
val name : t -> string
val pp : Format.formatter -> t -> unit
