(** Reference interpreter for the x86 subset.

    Executes the encoded byte image directly (decode → execute), with
    sequentially consistent memory semantics.  Serves as the functional
    oracle for differential testing of the DBT pipeline: a translated
    program must compute the same final registers/memory as this
    interpreter on race-free inputs.

    Conditional branches are evaluated from the most recent [Cmp] (or
    flag-setting RMW), matching the discipline the DBT frontend relies
    on. *)

type state = {
  regs : int64 array;  (** 16 GP registers, indexed by [Reg.index] *)
  mutable rip : int64;
  mutable cmp : int64 * int64;  (** operands of the last comparison *)
  mem : Memsys.Mem.t;
  mutable halted : bool;
  mutable exit_code : int64;
  mutable steps : int;
  output : Buffer.t;  (** bytes written via the write syscall *)
  code : string;
  base : int64;
}

val create : ?mem:Memsys.Mem.t -> code:string -> base:int64 -> entry:int64 -> unit -> state

(** Execute one instruction.  Raises [Decode.Bad_encoding] on bad pc. *)
val step : state -> unit

(** Run until halt or [max_steps]; returns the number of executed
    instructions. *)
val run : ?max_steps:int -> state -> int

(** Evaluate a condition code against a comparison pair. *)
val eval_cc : Insn.cc -> int64 * int64 -> bool
