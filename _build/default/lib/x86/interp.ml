type state = {
  regs : int64 array;
  mutable rip : int64;
  mutable cmp : int64 * int64;
  mem : Memsys.Mem.t;
  mutable halted : bool;
  mutable exit_code : int64;
  mutable steps : int;
  output : Buffer.t;
  code : string;
  base : int64;
}

let create ?mem ~code ~base ~entry () =
  let mem = match mem with Some m -> m | None -> Memsys.Mem.create () in
  {
    regs = Array.make 16 0L;
    rip = entry;
    cmp = (0L, 0L);
    mem;
    halted = false;
    exit_code = 0L;
    steps = 0;
    output = Buffer.create 64;
    code;
    base;
  }

let get s r = s.regs.(Reg.index r)
let set s r v = s.regs.(Reg.index r) <- v
let src s = function Insn.R r -> get s r | Insn.I i -> i

let ea s (m : Insn.mem) =
  let base = match m.base with Some b -> get s b | None -> 0L in
  let index =
    match m.index with
    | Some (r, scale) -> Int64.mul (get s r) (Int64.of_int scale)
    | None -> 0L
  in
  Int64.add (Int64.add base index) m.disp

let eval_cc (cc : Insn.cc) (a, b) =
  match cc with
  | Insn.E -> Int64.equal a b
  | Insn.Ne -> not (Int64.equal a b)
  | Insn.L -> Int64.compare a b < 0
  | Insn.Le -> Int64.compare a b <= 0
  | Insn.G -> Int64.compare a b > 0
  | Insn.Ge -> Int64.compare a b >= 0
  | Insn.B -> Int64.unsigned_compare a b < 0
  | Insn.Be -> Int64.unsigned_compare a b <= 0
  | Insn.A -> Int64.unsigned_compare a b > 0
  | Insn.Ae -> Int64.unsigned_compare a b >= 0

let alu_eval (op : Insn.alu) a b =
  match op with
  | Insn.Add -> Int64.add a b
  | Insn.Sub -> Int64.sub a b
  | Insn.And -> Int64.logand a b
  | Insn.Or -> Int64.logor a b
  | Insn.Xor -> Int64.logxor a b
  | Insn.Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Insn.Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Insn.Imul -> Int64.mul a b

let fp_eval (op : Insn.fpop) a b =
  let fa = Int64.float_of_bits a and fb = Int64.float_of_bits b in
  let r =
    match op with
    | Insn.Fadd -> fa +. fb
    | Insn.Fsub -> fa -. fb
    | Insn.Fmul -> fa *. fb
    | Insn.Fdiv -> fa /. fb
    | Insn.Fsqrt -> sqrt fb
  in
  Int64.bits_of_float r

let push s v =
  let rsp = Int64.sub (get s Reg.RSP) 8L in
  set s Reg.RSP rsp;
  Memsys.Mem.store s.mem rsp v

let pop s =
  let rsp = get s Reg.RSP in
  let v = Memsys.Mem.load s.mem rsp in
  set s Reg.RSP (Int64.add rsp 8L);
  v

let syscall s =
  match get s Reg.RAX with
  | 60L ->
      (* exit *)
      s.halted <- true;
      s.exit_code <- get s Reg.RDI
  | 1L ->
      (* write(fd=rdi, buf=rsi, len=rdx) *)
      let buf = get s Reg.RSI and len = Int64.to_int (get s Reg.RDX) in
      for i = 0 to len - 1 do
        Buffer.add_char s.output
          (Char.chr (Memsys.Mem.load_byte s.mem (Int64.add buf (Int64.of_int i))))
      done;
      set s Reg.RAX (Int64.of_int len)
  | _ -> set s Reg.RAX (-38L) (* -ENOSYS *)

let step s =
  let insn, len = Decode.decode s.code ~pc:s.rip ~base:s.base in
  let next = Int64.add s.rip (Int64.of_int len) in
  s.steps <- s.steps + 1;
  let goto t = s.rip <- t in
  s.rip <- next;
  (match insn with
  | Insn.Mov_ri (r, imm) -> set s r imm
  | Insn.Mov_rr (a, b) -> set s a (get s b)
  | Insn.Load (r, m) -> set s r (Memsys.Mem.load s.mem (ea s m))
  | Insn.Store (m, v) -> Memsys.Mem.store s.mem (ea s m) (src s v)
  | Insn.Alu (op, r, v) -> set s r (alu_eval op (get s r) (src s v))
  | Insn.Lea (r, m) -> set s r (ea s m)
  | Insn.Inc r -> set s r (Int64.add (get s r) 1L)
  | Insn.Dec r -> set s r (Int64.sub (get s r) 1L)
  | Insn.Neg r -> set s r (Int64.neg (get s r))
  | Insn.Not r -> set s r (Int64.lognot (get s r))
  | Insn.Cmov (cc, a, b) -> if eval_cc cc s.cmp then set s a (get s b)
  | Insn.Fp (op, a, b) -> set s a (fp_eval op (get s a) (get s b))
  | Insn.Cmp (r, v) -> s.cmp <- (get s r, src s v)
  | Insn.Test (r, v) -> s.cmp <- (Int64.logand (get s r) (src s v), 0L)
  | Insn.Jmp t -> goto t
  | Insn.Jcc (cc, t) -> if eval_cc cc s.cmp then goto t
  | Insn.Call t ->
      push s next;
      goto t
  | Insn.Ret -> goto (pop s)
  | Insn.Push r -> push s (get s r)
  | Insn.Pop r -> set s r (pop s)
  | Insn.Lock_cmpxchg (m, r) ->
      (* Flags as from CMP rax, [m] — the comparison pair is (rax, old),
         matching the DBT frontend's lazy-flag encoding. *)
      let addr = ea s m in
      let old = Memsys.Mem.load s.mem addr in
      let rax = get s Reg.RAX in
      s.cmp <- (rax, old);
      if Int64.equal old rax then Memsys.Mem.store s.mem addr (get s r)
      else set s Reg.RAX old
  | Insn.Lock_xadd (m, r) ->
      let addr = ea s m in
      let old = Memsys.Mem.load s.mem addr in
      Memsys.Mem.store s.mem addr (Int64.add old (get s r));
      set s r old
  | Insn.Xchg (m, r) ->
      let addr = ea s m in
      let old = Memsys.Mem.load s.mem addr in
      Memsys.Mem.store s.mem addr (get s r);
      set s r old
  | Insn.Mfence | Insn.Nop -> ()
  | Insn.Syscall -> syscall s
  | Insn.Hlt -> s.halted <- true);
  ()

let run ?(max_steps = 10_000_000) s =
  let start = s.steps in
  while (not s.halted) && s.steps - start < max_steps do
    step s
  done;
  s.steps - start
