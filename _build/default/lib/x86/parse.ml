exception Error of { line : int; msg : string }

let err line fmt = Format.kasprintf (fun msg -> raise (Error { line; msg })) fmt

(* ------------------------------------------------------------------ *)
(* Line-level tokenizer: mnemonics, registers, numbers, punctuation.   *)

type token =
  | Word of string
  | Num of int64
  | Imm of int64
  | Lbracket
  | Rbracket
  | Comma
  | Plus
  | Minus
  | Star
  | Colon
  | At

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '@' || c = '.'

let tokenize line_no s =
  let n = String.length s in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let number i =
    let rec go j =
      if
        j < n
        && ((s.[j] >= '0' && s.[j] <= '9')
           || (s.[j] >= 'a' && s.[j] <= 'f')
           || (s.[j] >= 'A' && s.[j] <= 'F')
           || s.[j] = 'x' || s.[j] = 'X')
      then go (j + 1)
      else j
    in
    let j = go i in
    let text = String.sub s i (j - i) in
    match Int64.of_string_opt text with
    | Some v -> (v, j)
    | None -> err line_no "bad number %S" text
  in
  let rec go i =
    if i >= n then ()
    else
      match s.[i] with
      | ' ' | '\t' -> go (i + 1)
      | '#' | ';' -> ()
      | '[' -> push Lbracket; go (i + 1)
      | ']' -> push Rbracket; go (i + 1)
      | ',' -> push Comma; go (i + 1)
      | '+' -> push Plus; go (i + 1)
      | '*' -> push Star; go (i + 1)
      | ':' -> push Colon; go (i + 1)
      | '@' -> push At; go (i + 1)
      | '$' ->
          let neg = i + 1 < n && s.[i + 1] = '-' in
          let v, j = number (if neg then i + 2 else i + 1) in
          push (Imm (if neg then Int64.neg v else v));
          go j
      | '-' ->
          if i + 1 < n && s.[i + 1] >= '0' && s.[i + 1] <= '9' then begin
            let v, j = number (i + 1) in
            push Minus;
            push (Num v);
            go j
          end
          else begin
            push Minus;
            go (i + 1)
          end
      | c when c >= '0' && c <= '9' ->
          let v, j = number i in
          push (Num v);
          go j
      | c when is_word_char c ->
          let rec w j = if j < n && is_word_char s.[j] then w (j + 1) else j in
          let j = w i in
          push (Word (String.sub s i (j - i)));
          go j
      | c -> err line_no "unexpected character %C" c
  in
  go 0;
  List.rev !toks

(* ------------------------------------------------------------------ *)

let reg_of_name line = function
  | "rax" -> Reg.RAX
  | "rbx" -> Reg.RBX
  | "rcx" -> Reg.RCX
  | "rdx" -> Reg.RDX
  | "rsi" -> Reg.RSI
  | "rdi" -> Reg.RDI
  | "rbp" -> Reg.RBP
  | "rsp" -> Reg.RSP
  | "r8" -> Reg.R8
  | "r9" -> Reg.R9
  | "r10" -> Reg.R10
  | "r11" -> Reg.R11
  | "r12" -> Reg.R12
  | "r13" -> Reg.R13
  | "r14" -> Reg.R14
  | "r15" -> Reg.R15
  | w -> err line "unknown register %S" w

let cc_of_suffix line = function
  | "e" -> Insn.E
  | "ne" -> Insn.Ne
  | "l" -> Insn.L
  | "le" -> Insn.Le
  | "g" -> Insn.G
  | "ge" -> Insn.Ge
  | "b" -> Insn.B
  | "be" -> Insn.Be
  | "a" -> Insn.A
  | "ae" -> Insn.Ae
  | s -> err line "unknown condition code %S" s

type cursor = { mutable toks : token list; line : int }

let next c =
  match c.toks with
  | t :: rest ->
      c.toks <- rest;
      t
  | [] -> err c.line "unexpected end of line"

let peek c = match c.toks with t :: _ -> Some t | [] -> None

let expect_comma c =
  match next c with
  | Comma -> ()
  | _ -> err c.line "expected ','"

let reg c =
  match next c with
  | Word w -> reg_of_name c.line w
  | _ -> err c.line "expected a register"

(* [base + index*scale + disp] in any sensible order, each part
   optional. *)
let mem c =
  (match next c with Lbracket -> () | _ -> err c.line "expected '['");
  let base = ref None
  and index = ref None
  and disp = ref 0L
  and sign = ref 1L in
  let add_term () =
    match next c with
    | Num v ->
        disp := Int64.add !disp (Int64.mul !sign v);
        sign := 1L
    | Word w -> (
        let r = reg_of_name c.line w in
        match peek c with
        | Some Star ->
            ignore (next c);
            let scale =
              match next c with
              | Num v -> Int64.to_int v
              | _ -> err c.line "expected a scale"
            in
            if !index <> None then err c.line "two index registers";
            index := Some (r, scale)
        | _ ->
            if !base = None then base := Some r
            else if !index = None then index := Some (r, 1)
            else err c.line "too many registers in address")
    | _ -> err c.line "bad address component"
  in
  add_term ();
  let rec more () =
    match next c with
    | Rbracket -> ()
    | Plus ->
        add_term ();
        more ()
    | Minus ->
        sign := -1L;
        add_term ();
        more ()
    | _ -> err c.line "expected '+', '-' or ']'"
  in
  more ();
  { Insn.base = !base; index = !index; disp = !disp }

let src c =
  match next c with
  | Imm v -> Insn.I v
  | Word w -> Insn.R (reg_of_name c.line w)
  | _ -> err c.line "expected a register or $immediate"

let alu_of_name = function
  | "add" -> Some Insn.Add
  | "sub" -> Some Insn.Sub
  | "and" -> Some Insn.And
  | "or" -> Some Insn.Or
  | "xor" -> Some Insn.Xor
  | "shl" -> Some Insn.Shl
  | "shr" -> Some Insn.Shr
  | "imul" -> Some Insn.Imul
  | _ -> None

let fp_of_name = function
  | "addsd" -> Some Insn.Fadd
  | "subsd" -> Some Insn.Fsub
  | "mulsd" -> Some Insn.Fmul
  | "divsd" -> Some Insn.Fdiv
  | "sqrtsd" -> Some Insn.Fsqrt
  | _ -> None

let label c =
  match next c with
  | Word w -> w
  | _ -> err c.line "expected a label"

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let item_of_line line toks =
  let c = { toks; line } in
  let finish item =
    match peek c with
    | None -> item
    | Some _ -> err line "trailing tokens"
  in
  match next c with
  | Word w when peek c = Some Colon ->
      ignore (next c);
      finish (Asm.Label w)
  | Word "mov" -> (
      match next c with
      | Lbracket ->
          c.toks <- Lbracket :: c.toks;
          let m = mem c in
          expect_comma c;
          (match next c with
          | Imm v -> finish (Asm.Ins (Insn.Store (m, Insn.I v)))
          | Word w -> finish (Asm.Ins (Insn.Store (m, Insn.R (reg_of_name line w))))
          | _ -> err line "expected a store source")
      | Word w -> (
          let r = reg_of_name line w in
          expect_comma c;
          match next c with
          | Imm v -> finish (Asm.Ins (Insn.Mov_ri (r, v)))
          | Word w2 -> finish (Asm.Ins (Insn.Mov_rr (r, reg_of_name line w2)))
          | At -> finish (Asm.Mov_lbl (r, label c))
          | Lbracket ->
              c.toks <- Lbracket :: c.toks;
              finish (Asm.Ins (Insn.Load (r, mem c)))
          | _ -> err line "bad mov operands")
      | _ -> err line "bad mov operands")
  | Word "lea" ->
      let r = reg c in
      expect_comma c;
      finish (Asm.Ins (Insn.Lea (r, mem c)))
  | Word "inc" -> finish (Asm.Ins (Insn.Inc (reg c)))
  | Word "dec" -> finish (Asm.Ins (Insn.Dec (reg c)))
  | Word "neg" -> finish (Asm.Ins (Insn.Neg (reg c)))
  | Word "not" -> finish (Asm.Ins (Insn.Not (reg c)))
  | Word "cmp" ->
      let r = reg c in
      expect_comma c;
      finish (Asm.Ins (Insn.Cmp (r, src c)))
  | Word "test" ->
      let r = reg c in
      expect_comma c;
      finish (Asm.Ins (Insn.Test (r, src c)))
  | Word "jmp" -> finish (Asm.Jmp_lbl (label c))
  | Word "call" -> finish (Asm.Call_lbl (label c))
  | Word "ret" -> finish (Asm.Ins Insn.Ret)
  | Word "push" -> finish (Asm.Ins (Insn.Push (reg c)))
  | Word "pop" -> finish (Asm.Ins (Insn.Pop (reg c)))
  | Word "mfence" -> finish (Asm.Ins Insn.Mfence)
  | Word "nop" -> finish (Asm.Ins Insn.Nop)
  | Word "syscall" -> finish (Asm.Ins Insn.Syscall)
  | Word "hlt" -> finish (Asm.Ins Insn.Hlt)
  | Word "lock" -> (
      match next c with
      | Word "cmpxchg" ->
          let m = mem c in
          expect_comma c;
          finish (Asm.Ins (Insn.Lock_cmpxchg (m, reg c)))
      | Word "xadd" ->
          let m = mem c in
          expect_comma c;
          finish (Asm.Ins (Insn.Lock_xadd (m, reg c)))
      | _ -> err line "expected cmpxchg or xadd after lock")
  | Word "xchg" ->
      let m = mem c in
      expect_comma c;
      finish (Asm.Ins (Insn.Xchg (m, reg c)))
  | Word w when alu_of_name w <> None ->
      let op = Option.get (alu_of_name w) in
      let r = reg c in
      expect_comma c;
      finish (Asm.Ins (Insn.Alu (op, r, src c)))
  | Word w when fp_of_name w <> None ->
      let op = Option.get (fp_of_name w) in
      let a = reg c in
      expect_comma c;
      finish (Asm.Ins (Insn.Fp (op, a, reg c)))
  | Word w when starts_with ~prefix:"cmov" w ->
      let cc = cc_of_suffix line (String.sub w 4 (String.length w - 4)) in
      let a = reg c in
      expect_comma c;
      finish (Asm.Ins (Insn.Cmov (cc, a, reg c)))
  | Word w when String.length w > 1 && w.[0] = 'j' ->
      let cc = cc_of_suffix line (String.sub w 1 (String.length w - 1)) in
      finish (Asm.Jcc_lbl (cc, label c))
  | Word w -> err line "unknown mnemonic %S" w
  | _ -> err line "expected a mnemonic or label"

let parse text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i l ->
         match tokenize (i + 1) l with
         | [] -> []
         | toks -> [ item_of_line (i + 1) toks ])
       lines)

let parse_insn text =
  match parse text with
  | [ Asm.Ins i ] -> i
  | _ -> err 1 "expected exactly one instruction"
