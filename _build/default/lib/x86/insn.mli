(** The x86-64 guest instruction subset.

    A realistic working subset for user-mode programs: 64-bit moves,
    loads/stores with base+displacement addressing, ALU and scalar
    double-precision SSE arithmetic, compare/branch, call/ret with a
    stack, LOCK-prefixed RMWs ([CMPXCHG], [XADD], [XCHG]), [MFENCE] and
    [SYSCALL].  Branch/call operands are absolute guest addresses in the
    AST; the byte encoding uses rel32 displacements like real x86. *)

type alu = Add | Sub | And | Or | Xor | Shl | Shr | Imul

(** Scalar double SSE operations ([addsd], ..., [sqrtsd]); values live
    bit-boxed in general-purpose registers in this subset. *)
type fpop = Fadd | Fsub | Fmul | Fdiv | Fsqrt

type src = R of Reg.t | I of int64

(** Memory operand: [base + index*scale + disp]; scale ∈ {1,2,4,8}. *)
type mem = { base : Reg.t option; index : (Reg.t * int) option; disp : int64 }

(** [abs disp] / [based r disp]: common operand shorthands. *)
val abs : int64 -> mem

val based : Reg.t -> int64 -> mem
val indexed : Reg.t -> Reg.t -> int -> int64 -> mem

type cc = E | Ne | L | Le | G | Ge | B | Be | A | Ae

type t =
  | Mov_ri of Reg.t * int64
  | Mov_rr of Reg.t * Reg.t
  | Load of Reg.t * mem  (** [mov r, [m]] *)
  | Store of mem * src  (** [mov [m], r/imm] *)
  | Alu of alu * Reg.t * src
  | Lea of Reg.t * mem  (** address computation, no memory access *)
  | Inc of Reg.t
  | Dec of Reg.t
  | Neg of Reg.t
  | Not of Reg.t
  | Cmov of cc * Reg.t * Reg.t  (** conditional move (flags from last Cmp/Test) *)
  | Fp of fpop * Reg.t * Reg.t
  | Cmp of Reg.t * src
  | Test of Reg.t * src  (** flags := (a land b ?= 0) *)
  | Jmp of int64
  | Jcc of cc * int64
  | Call of int64
  | Ret
  | Push of Reg.t
  | Pop of Reg.t
  | Lock_cmpxchg of mem * Reg.t  (** compare [m] with RAX; ZF; RAX←old *)
  | Lock_xadd of mem * Reg.t  (** r←old, [m]←old+r, atomically *)
  | Xchg of mem * Reg.t  (** implicitly locked *)
  | Mfence
  | Nop
  | Syscall
  | Hlt

(** Does the instruction end a translation block? *)
val is_terminator : t -> bool

val pp_mem : Format.formatter -> mem -> unit
val pp : Format.formatter -> t -> unit
