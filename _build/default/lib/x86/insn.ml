type alu = Add | Sub | And | Or | Xor | Shl | Shr | Imul
type fpop = Fadd | Fsub | Fmul | Fdiv | Fsqrt
type src = R of Reg.t | I of int64
type mem = { base : Reg.t option; index : (Reg.t * int) option; disp : int64 }

let abs disp = { base = None; index = None; disp }
let based r disp = { base = Some r; index = None; disp }
let indexed b i scale disp = { base = Some b; index = Some (i, scale); disp }
type cc = E | Ne | L | Le | G | Ge | B | Be | A | Ae

type t =
  | Mov_ri of Reg.t * int64
  | Mov_rr of Reg.t * Reg.t
  | Load of Reg.t * mem
  | Store of mem * src
  | Alu of alu * Reg.t * src
  | Lea of Reg.t * mem
  | Inc of Reg.t
  | Dec of Reg.t
  | Neg of Reg.t
  | Not of Reg.t
  | Cmov of cc * Reg.t * Reg.t
  | Fp of fpop * Reg.t * Reg.t
  | Cmp of Reg.t * src
  | Test of Reg.t * src
  | Jmp of int64
  | Jcc of cc * int64
  | Call of int64
  | Ret
  | Push of Reg.t
  | Pop of Reg.t
  | Lock_cmpxchg of mem * Reg.t
  | Lock_xadd of mem * Reg.t
  | Xchg of mem * Reg.t
  | Mfence
  | Nop
  | Syscall
  | Hlt

let is_terminator = function
  | Jmp _ | Jcc _ | Call _ | Ret | Syscall | Hlt -> true
  | Mov_ri _ | Mov_rr _ | Load _ | Store _ | Alu _ | Lea _ | Inc _ | Dec _
  | Neg _ | Not _ | Cmov _ | Fp _ | Cmp _ | Test _ | Push _ | Pop _
  | Lock_cmpxchg _ | Lock_xadd _ | Xchg _ | Mfence | Nop ->
      false

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Imul -> "imul"

let fp_name = function
  | Fadd -> "addsd"
  | Fsub -> "subsd"
  | Fmul -> "mulsd"
  | Fdiv -> "divsd"
  | Fsqrt -> "sqrtsd"

let cc_name = function
  | E -> "e"
  | Ne -> "ne"
  | L -> "l"
  | Le -> "le"
  | G -> "g"
  | Ge -> "ge"
  | B -> "b"
  | Be -> "be"
  | A -> "a"
  | Ae -> "ae"

let pp_mem ppf m =
  match (m.base, m.index) with
  | Some b, Some (i, s) ->
      Fmt.pf ppf "[%a+%a*%d%+Ld]" Reg.pp b Reg.pp i s m.disp
  | Some b, None -> Fmt.pf ppf "[%a%+Ld]" Reg.pp b m.disp
  | None, Some (i, s) -> Fmt.pf ppf "[%a*%d%+Ld]" Reg.pp i s m.disp
  | None, None -> Fmt.pf ppf "[0x%Lx]" m.disp

let pp_src ppf = function
  | R r -> Reg.pp ppf r
  | I i -> Fmt.pf ppf "$%Ld" i

let pp ppf = function
  | Mov_ri (r, i) -> Fmt.pf ppf "mov %a, $%Ld" Reg.pp r i
  | Mov_rr (a, b) -> Fmt.pf ppf "mov %a, %a" Reg.pp a Reg.pp b
  | Load (r, m) -> Fmt.pf ppf "mov %a, %a" Reg.pp r pp_mem m
  | Store (m, s) -> Fmt.pf ppf "mov %a, %a" pp_mem m pp_src s
  | Alu (op, r, s) -> Fmt.pf ppf "%s %a, %a" (alu_name op) Reg.pp r pp_src s
  | Lea (r, m) -> Fmt.pf ppf "lea %a, %a" Reg.pp r pp_mem m
  | Inc r -> Fmt.pf ppf "inc %a" Reg.pp r
  | Dec r -> Fmt.pf ppf "dec %a" Reg.pp r
  | Neg r -> Fmt.pf ppf "neg %a" Reg.pp r
  | Not r -> Fmt.pf ppf "not %a" Reg.pp r
  | Cmov (cc, a, b) ->
      Fmt.pf ppf "cmov%s %a, %a" (cc_name cc) Reg.pp a Reg.pp b
  | Fp (op, a, b) -> Fmt.pf ppf "%s %a, %a" (fp_name op) Reg.pp a Reg.pp b
  | Cmp (r, s) -> Fmt.pf ppf "cmp %a, %a" Reg.pp r pp_src s
  | Test (r, s) -> Fmt.pf ppf "test %a, %a" Reg.pp r pp_src s
  | Jmp t -> Fmt.pf ppf "jmp 0x%Lx" t
  | Jcc (cc, t) -> Fmt.pf ppf "j%s 0x%Lx" (cc_name cc) t
  | Call t -> Fmt.pf ppf "call 0x%Lx" t
  | Ret -> Fmt.string ppf "ret"
  | Push r -> Fmt.pf ppf "push %a" Reg.pp r
  | Pop r -> Fmt.pf ppf "pop %a" Reg.pp r
  | Lock_cmpxchg (m, r) -> Fmt.pf ppf "lock cmpxchg %a, %a" pp_mem m Reg.pp r
  | Lock_xadd (m, r) -> Fmt.pf ppf "lock xadd %a, %a" pp_mem m Reg.pp r
  | Xchg (m, r) -> Fmt.pf ppf "xchg %a, %a" pp_mem m Reg.pp r
  | Mfence -> Fmt.string ppf "mfence"
  | Nop -> Fmt.string ppf "nop"
  | Syscall -> Fmt.string ppf "syscall"
  | Hlt -> Fmt.string ppf "hlt"
