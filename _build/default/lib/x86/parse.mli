(** Text assembler for the x86 subset.

    Accepts the syntax {!Insn.pp} prints, with labels for code positions
    and branch targets:

    {v
    main:
      mov rax, $0
      mov rbx, $10
    loop:
      add rax, rbx
      dec rbx
      test rbx, rbx
      jne loop
      mov [0x5000], rax
      hlt
    v}

    Memory operands: [[0x1000]], [[rbx+8]], [[rbx-8]], [[rbx+rcx*4+16]].
    Immediates: [$42], [$-3], [$0xff].  [#] and [;] start comments.
    Branch/call targets and [mov r, @label] operands are labels. *)

exception Error of { line : int; msg : string }

val parse : string -> Asm.item list

(** Parse a single instruction (no labels). *)
val parse_insn : string -> Insn.t
