open Insn

exception Bad_encoding of int64 * string

let alu_of_index = function
  | 0 -> Add
  | 1 -> Sub
  | 2 -> And
  | 3 -> Or
  | 4 -> Xor
  | 5 -> Shl
  | 6 -> Shr
  | 7 -> Imul
  | n -> invalid_arg (Printf.sprintf "alu_of_index %d" n)

let fp_of_index = function
  | 0 -> Fadd
  | 1 -> Fsub
  | 2 -> Fmul
  | 3 -> Fdiv
  | 4 -> Fsqrt
  | n -> invalid_arg (Printf.sprintf "fp_of_index %d" n)

let cc_of_index = function
  | 0 -> E
  | 1 -> Ne
  | 2 -> L
  | 3 -> Le
  | 4 -> G
  | 5 -> Ge
  | 6 -> B
  | 7 -> Be
  | 8 -> A
  | 9 -> Ae
  | n -> invalid_arg (Printf.sprintf "cc_of_index %d" n)

type cursor = { text : string; mutable pos : int; pc : int64 }

let byte c =
  if c.pos >= String.length c.text then
    raise (Bad_encoding (c.pc, "truncated instruction"));
  let v = Char.code c.text.[c.pos] in
  c.pos <- c.pos + 1;
  v

let i32 c =
  (* sequential lets: `and` bindings have unspecified evaluation order *)
  let b0 = byte c in
  let b1 = byte c in
  let b2 = byte c in
  let b3 = byte c in
  Int32.logor
    (Int32.of_int (b0 lor (b1 lsl 8) lor (b2 lsl 16)))
    (Int32.shift_left (Int32.of_int b3) 24)

let i64 c =
  let lo = i32 c and hi = i32 c in
  Int64.logor
    (Int64.logand (Int64.of_int32 lo) 0xFFFFFFFFL)
    (Int64.shift_left (Int64.of_int32 hi) 32)

let mem c =
  let b = byte c in
  let base = if b = 0x10 then None else Some (Reg.of_index b) in
  let ix = byte c in
  let index =
    if ix = 0xFF then None
    else Some (Reg.of_index (ix lsr 2), 1 lsl (ix land 3))
  in
  let disp = Int64.of_int32 (i32 c) in
  { base; index; disp }

let reg_pair c =
  let b = byte c in
  (Reg.of_index (b lsr 4), Reg.of_index (b land 0xF))

let decode text ~pc ~base =
  let start = Int64.to_int (Int64.sub pc base) in
  if start < 0 || start >= String.length text then
    raise (Bad_encoding (pc, "pc outside text section"));
  let c = { text; pos = start; pc } in
  let target_of_rel rel =
    Int64.add (Int64.add pc (Int64.of_int (c.pos - start)))
      (Int64.of_int32 rel)
    (* note: rel is read before this computes, so pos is past the insn *)
  in
  let insn =
    match byte c with
    | 0x01 ->
        let r = Reg.of_index (byte c) in
        Mov_ri (r, i64 c)
    | 0x02 ->
        let a, b = reg_pair c in
        Mov_rr (a, b)
    | 0x06 ->
        let r = Reg.of_index (byte c) in
        Lea (r, mem c)
    | 0x07 -> Inc (Reg.of_index (byte c))
    | 0x08 -> Dec (Reg.of_index (byte c))
    | 0x09 -> Neg (Reg.of_index (byte c))
    | 0x0A -> Not (Reg.of_index (byte c))
    | op when op >= 0xA0 && op < 0xAA ->
        let a, b = reg_pair c in
        Cmov (cc_of_index (op - 0xA0), a, b)
    | 0x42 ->
        let a, b = reg_pair c in
        Test (a, R b)
    | 0x43 ->
        let r = Reg.of_index (byte c) in
        Test (r, I (Int64.of_int32 (i32 c)))
    | 0x03 ->
        let r = Reg.of_index (byte c) in
        Load (r, mem c)
    | 0x04 ->
        let m = mem c in
        Store (m, R (Reg.of_index (byte c)))
    | 0x05 ->
        let m = mem c in
        Store (m, I (Int64.of_int32 (i32 c)))
    | op when op >= 0x10 && op < 0x18 ->
        let a, b = reg_pair c in
        Alu (alu_of_index (op - 0x10), a, R b)
    | op when op >= 0x18 && op < 0x20 ->
        let r = Reg.of_index (byte c) in
        Alu (alu_of_index (op - 0x18), r, I (Int64.of_int32 (i32 c)))
    | op when op >= 0x30 && op < 0x35 ->
        let a, b = reg_pair c in
        Fp (fp_of_index (op - 0x30), a, b)
    | 0x40 ->
        let a, b = reg_pair c in
        Cmp (a, R b)
    | 0x41 ->
        let r = Reg.of_index (byte c) in
        Cmp (r, I (Int64.of_int32 (i32 c)))
    | 0x50 ->
        let rel = i32 c in
        Jmp (target_of_rel rel)
    | op when op >= 0x51 && op < 0x5B ->
        let rel = i32 c in
        Jcc (cc_of_index (op - 0x51), target_of_rel rel)
    | 0x60 ->
        let rel = i32 c in
        Call (target_of_rel rel)
    | 0x61 -> Ret
    | 0x62 -> Push (Reg.of_index (byte c))
    | 0x63 -> Pop (Reg.of_index (byte c))
    | 0x70 ->
        let m = mem c in
        Lock_cmpxchg (m, Reg.of_index (byte c))
    | 0x71 ->
        let m = mem c in
        Lock_xadd (m, Reg.of_index (byte c))
    | 0x72 ->
        let m = mem c in
        Xchg (m, Reg.of_index (byte c))
    | 0x80 -> Mfence
    | 0x90 -> Nop
    | 0x91 -> Syscall
    | 0x92 -> Hlt
    | op -> raise (Bad_encoding (pc, Printf.sprintf "unknown opcode 0x%02x" op))
  in
  (insn, c.pos - start)
