open Insn

let alu_index = function
  | Add -> 0
  | Sub -> 1
  | And -> 2
  | Or -> 3
  | Xor -> 4
  | Shl -> 5
  | Shr -> 6
  | Imul -> 7

let fp_index = function Fadd -> 0 | Fsub -> 1 | Fmul -> 2 | Fdiv -> 3 | Fsqrt -> 4

let cc_index = function
  | E -> 0
  | Ne -> 1
  | L -> 2
  | Le -> 3
  | G -> 4
  | Ge -> 5
  | B -> 6
  | Be -> 7
  | A -> 8
  | Ae -> 9

let mem_len = 6 (* base byte + index/scale byte + disp32 *)

let length = function
  | Mov_ri _ -> 1 + 1 + 8
  | Mov_rr _ | Cmov _ -> 1 + 1
  | Lea _ -> 1 + 1 + mem_len
  | Inc _ | Dec _ | Neg _ | Not _ -> 1 + 1
  | Test (_, R _) -> 1 + 1
  | Test (_, I _) -> 1 + 1 + 4
  | Load _ -> 1 + 1 + mem_len
  | Store (_, R _) -> 1 + mem_len + 1
  | Store (_, I _) -> 1 + mem_len + 4
  | Alu (_, _, R _) -> 1 + 1
  | Alu (_, _, I _) -> 1 + 1 + 4
  | Fp _ -> 1 + 1
  | Cmp (_, R _) -> 1 + 1
  | Cmp (_, I _) -> 1 + 1 + 4
  | Jmp _ -> 1 + 4
  | Jcc _ -> 1 + 4
  | Call _ -> 1 + 4
  | Ret -> 1
  | Push _ | Pop _ -> 1 + 1
  | Lock_cmpxchg _ | Lock_xadd _ | Xchg _ -> 1 + mem_len + 1
  | Mfence | Nop | Syscall | Hlt -> 1

let put_byte b v = Buffer.add_char b (Char.chr (v land 0xFF))

let put_i32 b (v : int32) =
  for i = 0 to 3 do
    put_byte b (Int32.to_int (Int32.shift_right_logical v (8 * i)) land 0xFF)
  done

let put_i64 b (v : int64) =
  for i = 0 to 7 do
    put_byte b (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF)
  done

let scale_bits = function
  | 1 -> 0
  | 2 -> 1
  | 4 -> 2
  | 8 -> 3
  | s -> invalid_arg (Printf.sprintf "Encode: bad scale %d" s)

let put_mem b (m : mem) =
  (match m.base with
  | Some r -> put_byte b (Reg.index r)
  | None -> put_byte b 0x10);
  (match m.index with
  | Some (r, scale) -> put_byte b ((Reg.index r lsl 2) lor scale_bits scale)
  | None -> put_byte b 0xFF);
  put_i32 b (Int64.to_int32 m.disp)

let put_rel32 b ~pc ~len target =
  let rel = Int64.sub target (Int64.add pc (Int64.of_int len)) in
  put_i32 b (Int64.to_int32 rel)

let emit b ~pc i =
  let len = length i in
  match i with
  | Mov_ri (r, imm) ->
      put_byte b 0x01;
      put_byte b (Reg.index r);
      put_i64 b imm
  | Mov_rr (a, c) ->
      put_byte b 0x02;
      put_byte b ((Reg.index a lsl 4) lor Reg.index c)
  | Lea (r, m) ->
      put_byte b 0x06;
      put_byte b (Reg.index r);
      put_mem b m
  | Inc r ->
      put_byte b 0x07;
      put_byte b (Reg.index r)
  | Dec r ->
      put_byte b 0x08;
      put_byte b (Reg.index r)
  | Neg r ->
      put_byte b 0x09;
      put_byte b (Reg.index r)
  | Not r ->
      put_byte b 0x0A;
      put_byte b (Reg.index r)
  | Cmov (cc, a, c) ->
      put_byte b (0xA0 + cc_index cc);
      put_byte b ((Reg.index a lsl 4) lor Reg.index c)
  | Test (r, R r2) ->
      put_byte b 0x42;
      put_byte b ((Reg.index r lsl 4) lor Reg.index r2)
  | Test (r, I imm) ->
      put_byte b 0x43;
      put_byte b (Reg.index r);
      put_i32 b (Int64.to_int32 imm)
  | Load (r, m) ->
      put_byte b 0x03;
      put_byte b (Reg.index r);
      put_mem b m
  | Store (m, R r) ->
      put_byte b 0x04;
      put_mem b m;
      put_byte b (Reg.index r)
  | Store (m, I imm) ->
      put_byte b 0x05;
      put_mem b m;
      put_i32 b (Int64.to_int32 imm)
  | Alu (op, r, R r2) ->
      put_byte b (0x10 + alu_index op);
      put_byte b ((Reg.index r lsl 4) lor Reg.index r2)
  | Alu (op, r, I imm) ->
      put_byte b (0x18 + alu_index op);
      put_byte b (Reg.index r);
      put_i32 b (Int64.to_int32 imm)
  | Fp (op, a, c) ->
      put_byte b (0x30 + fp_index op);
      put_byte b ((Reg.index a lsl 4) lor Reg.index c)
  | Cmp (r, R r2) ->
      put_byte b 0x40;
      put_byte b ((Reg.index r lsl 4) lor Reg.index r2)
  | Cmp (r, I imm) ->
      put_byte b 0x41;
      put_byte b (Reg.index r);
      put_i32 b (Int64.to_int32 imm)
  | Jmp target ->
      put_byte b 0x50;
      put_rel32 b ~pc ~len target
  | Jcc (cc, target) ->
      put_byte b (0x51 + cc_index cc);
      put_rel32 b ~pc ~len target
  | Call target ->
      put_byte b 0x60;
      put_rel32 b ~pc ~len target
  | Ret -> put_byte b 0x61
  | Push r ->
      put_byte b 0x62;
      put_byte b (Reg.index r)
  | Pop r ->
      put_byte b 0x63;
      put_byte b (Reg.index r)
  | Lock_cmpxchg (m, r) ->
      put_byte b 0x70;
      put_mem b m;
      put_byte b (Reg.index r)
  | Lock_xadd (m, r) ->
      put_byte b 0x71;
      put_mem b m;
      put_byte b (Reg.index r)
  | Xchg (m, r) ->
      put_byte b 0x72;
      put_mem b m;
      put_byte b (Reg.index r)
  | Mfence -> put_byte b 0x80
  | Nop -> put_byte b 0x90
  | Syscall -> put_byte b 0x91
  | Hlt -> put_byte b 0x92

let encode ~pc i =
  let b = Buffer.create 16 in
  emit b ~pc i;
  Buffer.contents b
