type item =
  | Label of string
  | Ins of Insn.t
  | Jmp_lbl of string
  | Jcc_lbl of Insn.cc * string
  | Call_lbl of string
  | Mov_lbl of Reg.t * string

exception Undefined_label of string
exception Duplicate_label of string

type assembled = {
  org : int64;
  code : string;
  listing : (int64 * Insn.t) list;
  symbols : (string * int64) list;
}

let item_length = function
  | Label _ -> 0
  | Ins i -> Encode.length i
  | Jmp_lbl _ -> Encode.length (Insn.Jmp 0L)
  | Jcc_lbl (cc, _) -> Encode.length (Insn.Jcc (cc, 0L))
  | Call_lbl _ -> Encode.length (Insn.Call 0L)
  | Mov_lbl (r, _) -> Encode.length (Insn.Mov_ri (r, 0L))

let assemble ?(org = 0x1000L) items =
  (* Pass 1: label addresses. *)
  let symbols = Hashtbl.create 16 in
  let _ =
    List.fold_left
      (fun addr item ->
        (match item with
        | Label l ->
            if Hashtbl.mem symbols l then raise (Duplicate_label l);
            Hashtbl.add symbols l addr
        | Ins _ | Jmp_lbl _ | Jcc_lbl _ | Call_lbl _ | Mov_lbl _ -> ());
        Int64.add addr (Int64.of_int (item_length item)))
      org items
  in
  let resolve l =
    match Hashtbl.find_opt symbols l with
    | Some a -> a
    | None -> raise (Undefined_label l)
  in
  (* Pass 2: encode. *)
  let buf = Buffer.create 256 in
  let listing = ref [] in
  let _ =
    List.fold_left
      (fun addr item ->
        let insn =
          match item with
          | Label _ -> None
          | Ins i -> Some i
          | Jmp_lbl l -> Some (Insn.Jmp (resolve l))
          | Jcc_lbl (cc, l) -> Some (Insn.Jcc (cc, resolve l))
          | Call_lbl l -> Some (Insn.Call (resolve l))
          | Mov_lbl (r, l) -> Some (Insn.Mov_ri (r, resolve l))
        in
        match insn with
        | None -> addr
        | Some i ->
            Encode.emit buf ~pc:addr i;
            listing := (addr, i) :: !listing;
            Int64.add addr (Int64.of_int (Encode.length i)))
      org items
  in
  {
    org;
    code = Buffer.contents buf;
    listing = List.rev !listing;
    symbols = Hashtbl.fold (fun k v acc -> (k, v) :: acc) symbols [];
  }

let symbol a l =
  match List.assoc_opt l a.symbols with
  | Some addr -> addr
  | None -> raise (Undefined_label l)

let pp_listing ppf a =
  List.iter
    (fun (addr, i) -> Fmt.pf ppf "%8Lx: %a@." addr Insn.pp i)
    a.listing
