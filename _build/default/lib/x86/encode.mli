(** Byte-level encoding of the x86 subset.

    A compact fixed-layout encoding: one opcode byte, register nibbles,
    little-endian immediates, and — as on real x86 — branch targets
    stored as rel32 displacements from the end of the instruction.
    {!Decode} is the exact inverse (round-trip tested). *)

(** [length i] is the encoded size in bytes. *)
val length : Insn.t -> int

(** [encode ~pc i] encodes [i] assuming it is placed at guest address
    [pc] (needed for rel32 branch operands). *)
val encode : pc:int64 -> Insn.t -> string

(** Append to a buffer. *)
val emit : Buffer.t -> pc:int64 -> Insn.t -> unit
