module E = Axiom.Event

(* Can we move a fence across this op when looking for a merge partner?
   Only pure register computations — no memory accesses, no control. *)
let transparent op = Op.is_pure op

let rec merge_from f between rest =
  (* [f] is a pending fence; [between] (reversed) are transparent ops
     seen since. *)
  match rest with
  | Op.Mb f2 :: rest' -> merge_from (Mapping.Fence_alg.merge f f2) between rest'
  | op :: rest' when transparent op -> merge_from f (op :: between) rest'
  | _ -> (f, List.rev between, rest)

let rec run = function
  | [] -> []
  | Op.Mb f :: rest ->
      let f', between, rest' = merge_from f [] rest in
      if f' = E.F_acq || f' = E.F_rel then between @ run rest'
      else (Op.Mb f' :: between) @ run rest'
  | op :: rest -> op :: run rest

let count ops =
  List.length (List.filter (function Op.Mb _ -> true | _ -> false) ops)
