type t = {
  guest_pc : int64;
  guest_len : int;
  guest_insns : int;
  ops : Op.t list;
}

let fence_count b =
  List.length (List.filter (function Op.Mb _ -> true | _ -> false) b.ops)

let op_count b = List.length b.ops

let pp ppf b =
  Fmt.pf ppf "@[<v>TB@0x%Lx (%d guest insns):@,%a@]" b.guest_pc b.guest_insns
    (Fmt.list ~sep:Fmt.cut Op.pp)
    b.ops
