(** Redundant memory access elimination, implementing the verified
    Figure-10 rules at the IR level:

    - RAW / F-RAW: a load from an address just stored to is forwarded
      ([Mov] from the stored temp); allowed across [Fsc]/[Fww] fences.
    - RAR / F-RAR: a repeated load is forwarded from the previous load;
      allowed across [Frm]/[Fww] fences.
    - WAW / F-WAW: an overwritten store is deleted; allowed across
      [Frm]/[Fww] fences — and blocked when a non-forwarded load of the
      same address intervenes.

    Any other fence kind, helper call, atomic, or control-flow point
    conservatively kills tracking (this is what keeps the pass sound on
    code containing [Fmr]/[Fwr]; see the paper's FMR example).
    Addresses are tracked as (base temp, base version, offset): same
    base/version with different offsets cannot alias; different bases
    are conservatively treated as aliasing. *)

val run : Op.t list -> Op.t list
