(** Constant propagation and folding, including false-dependency
    elimination (paper §6.1: [X = a*0 ↝ X = 0] is trivially correct in
    the TCG IR model, which orders nothing by dependencies).

    The analysis is forward over straight-line code; constant knowledge
    is discarded at labels (join points). *)

val run : Op.t list -> Op.t list
