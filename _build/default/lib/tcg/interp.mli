(** Direct interpreter for TCG blocks.

    Used for differential testing: the optimizer must preserve the
    block's observable semantics (final globals, memory, exit), and the
    Arm backend must agree with this interpreter. *)

type exit_state =
  | Next_tb of int64  (** continue at a static guest pc *)
  | Jump of int64  (** computed jump target *)
  | Halted

type env = {
  temps : int64 array;
  mem : Memsys.Mem.t;
  helpers : string -> int64 list -> int64;
      (** helper and host-call dispatcher *)
}

val create_env :
  ?helpers:(string -> int64 list -> int64) -> Memsys.Mem.t -> env

(** Execute a block to its exit.  Raises [Failure] on a fall-through
    (blocks must end in an exit op) or runaway internal loop. *)
val exec_block : env -> Block.t -> exit_state
