(** Translation blocks: the unit of translation and caching. *)

type t = {
  guest_pc : int64;  (** guest address of the first instruction *)
  guest_len : int;  (** bytes of guest code covered *)
  guest_insns : int;  (** number of guest instructions *)
  ops : Op.t list;
}

val fence_count : t -> int
val op_count : t -> int
val pp : Format.formatter -> t -> unit
