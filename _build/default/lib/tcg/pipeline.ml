type pass = Const_fold | Dce | Mem_elim | Fence_merge

let pass_name = function
  | Const_fold -> "const-fold"
  | Dce -> "dce"
  | Mem_elim -> "mem-elim"
  | Fence_merge -> "fence-merge"

let all = [ Const_fold; Mem_elim; Dce; Fence_merge ]
let qemu_default = [ Const_fold; Mem_elim; Dce ]
let risotto_default = [ Const_fold; Mem_elim; Dce; Fence_merge ]

let run_pass = function
  | Const_fold -> Constfold.run
  | Dce -> Dce.run
  | Mem_elim -> Memopt.run
  | Fence_merge -> Fenceopt.run

let run passes (b : Block.t) =
  { b with ops = List.fold_left (fun ops p -> run_pass p ops) b.ops passes }
