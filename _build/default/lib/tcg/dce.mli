(** Dead code elimination.

    Two safe strategies combined:
    - a pure op writing a block-local temp that is never read anywhere in
      the block is removed;
    - in straight-line segments (no labels/branches), a pure op writing a
      global that is overwritten before any read or block exit is
      removed.

    Loads count as pure for deadness (an unread guest load may be
    removed; read elimination is sound in the TCG model, §5.4). *)

val run : Op.t list -> Op.t list
