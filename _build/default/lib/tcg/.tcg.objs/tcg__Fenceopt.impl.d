lib/tcg/fenceopt.ml: Axiom List Mapping Op
