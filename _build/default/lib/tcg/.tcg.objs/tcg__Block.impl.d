lib/tcg/block.ml: Fmt List Op
