lib/tcg/interp.ml: Array Block Hashtbl Int64 List Memsys Op Printf
