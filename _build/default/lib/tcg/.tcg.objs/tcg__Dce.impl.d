lib/tcg/dce.ml: Fun Int List Op Set
