lib/tcg/memopt.ml: Array Axiom Hashtbl List Op Option Seq
