lib/tcg/dce.mli: Op
