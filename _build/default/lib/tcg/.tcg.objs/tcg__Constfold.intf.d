lib/tcg/constfold.mli: Op
