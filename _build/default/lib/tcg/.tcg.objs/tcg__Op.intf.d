lib/tcg/op.mli: Axiom Format
