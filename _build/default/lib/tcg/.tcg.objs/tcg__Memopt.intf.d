lib/tcg/memopt.mli: Op
