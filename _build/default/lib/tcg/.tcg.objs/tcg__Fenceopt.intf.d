lib/tcg/fenceopt.mli: Op
