lib/tcg/pipeline.mli: Block Op
