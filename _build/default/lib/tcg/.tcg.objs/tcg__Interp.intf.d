lib/tcg/interp.mli: Block Memsys
