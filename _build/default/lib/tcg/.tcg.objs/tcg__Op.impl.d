lib/tcg/op.ml: Axiom Fmt Int64
