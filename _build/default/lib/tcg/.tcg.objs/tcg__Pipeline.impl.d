lib/tcg/pipeline.ml: Block Constfold Dce Fenceopt List Memopt
