lib/tcg/constfold.ml: Int List Map Op
