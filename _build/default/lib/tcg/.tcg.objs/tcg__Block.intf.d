lib/tcg/block.mli: Format Op
