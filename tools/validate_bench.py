#!/usr/bin/env python3
"""Validate the BENCH_*.json artifacts and related outputs.

One subcommand per artifact family; each loads the JSON, checks the
common envelope (schema_version / section / git_rev) and enforces the
section's acceptance gates.  CI calls these instead of inline heredocs
so the gates are versioned, testable and shared between jobs.

    validate_bench.py envelope FILE...          # envelope only
    validate_bench.py refinement BENCH_refinement.json
    validate_bench.py dispatch BENCH_dispatch.json
    validate_bench.py obs BENCH_obs.json obs_trace.json
    validate_bench.py witness REPORT_DIR
    validate_bench.py chaos BENCH_chaos.json
    validate_bench.py generator BENCH_generator.json
    validate_bench.py tiers BENCH_tiers.json

Exit 0 when every gate holds, 1 with a diagnostic otherwise.
"""

import glob
import json
import os
import sys


def fail(msg):
    print(f"validate_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")


def check_envelope(j, path, section=None, git_rev=True):
    """Every artifact opens with the same self-describing fields.
    Witness artifacts (one per counterexample, written by the report
    renderer rather than the bench harness) carry no git_rev."""
    if j.get("schema_version") != 1:
        fail(f"{path}: schema_version {j.get('schema_version')!r} != 1")
    if not isinstance(j.get("section"), str) or not j["section"]:
        fail(f"{path}: missing/empty section")
    if section is not None and j["section"] != section:
        fail(f"{path}: section {j['section']!r}, expected {section!r}")
    if git_rev and (not isinstance(j.get("git_rev"), str) or not j["git_rev"]):
        fail(f"{path}: missing/empty git_rev")


def cmd_envelope(paths):
    if not paths:
        fail("envelope: no files given")
    for p in paths:
        check_envelope(load(p), p)
    print(f"envelope OK: {len(paths)} artifact(s)")


def cmd_refinement(path):
    j = load(path)
    check_envelope(j, path, "refinement")
    if not j["verdicts_identical"]:
        fail(f"{path}: parallel verdicts diverge from sequential")
    if j["speedup"] < 1.0:
        fail(
            f"{path}: planned sweep slower than per-task baseline "
            f"(speedup {j['speedup']:.3f} < 1.0; "
            f"sequential {j['sequential_s']:.3f}s, "
            f"parallel {j['parallel_s']:.3f}s)"
        )
    if j["jobs"] < 2:
        fail(f"{path}: bench ran with jobs={j['jobs']}, need >= 2")
    chunks = j.get("chunks", [])
    if not chunks:
        fail(f"{path}: no per-chunk timings recorded")
    covered = sum(c["len"] for c in chunks)
    if covered != j["tasks"] and covered != j.get("cells", j["tasks"]):
        # The planner groups cells by program, so chunk lengths cover
        # the grouped job list, which is never larger than the tasks.
        if covered > j["tasks"]:
            fail(f"{path}: chunk lengths cover {covered} > {j['tasks']} tasks")
    print(
        f"refinement OK: speedup {j['speedup']:.2f}x over {j['tasks']} tasks "
        f"({len(chunks)} chunk(s), {j['domains_used']} domain(s), "
        f"{j['violations']} expected violations)"
    )


def cmd_dispatch(path):
    j = load(path)
    check_envelope(j, path, "dispatch")
    if not j["results_identical"]:
        fail(f"{path}: chained/unchained/interp guest results diverge")
    ch = j["chained"]
    if ch["superblocks"] == 0 or ch["chain_hits"] == 0:
        fail(f"{path}: chaining/superblocks did not engage")
    if ch["cycles"] >= j["unchained"]["cycles"]:
        fail(f"{path}: chaining did not save guest cycles")
    if ch["dispatches"] >= j["unchained"]["dispatches"]:
        fail(f"{path}: chaining did not reduce dispatches")
    if ch["chain_hit_rate"] < 0.95:
        fail(
            f"{path}: chain-hit rate {ch['chain_hit_rate']:.4f} "
            f"dropped below 0.95"
        )
    print(
        f"dispatch OK: {j['dispatch_reduction']:.1f}x fewer dispatches, "
        f"chain-hit rate {ch['chain_hit_rate']:.1%}, parity holds"
    )


def cmd_obs(bench_path, trace_path):
    j = load(bench_path)
    check_envelope(j, bench_path, "obs")
    if not j["parity"]:
        fail(f"{bench_path}: observability changed guest results")
    if not j["recorder_parity"]:
        fail(f"{bench_path}: the flight recorder changed guest results")
    if j["disabled_overhead_pct"] > 5.0:
        fail(
            f"{bench_path}: disabled overhead "
            f"{j['disabled_overhead_pct']}% > 5%"
        )
    if j["recorder_overhead_pct"] > 2.0:
        fail(
            f"{bench_path}: always-on recorder overhead "
            f"{j['recorder_overhead_pct']}% > 2%"
        )
    # Fence-elimination provenance: the risotto pipeline must both emit
    # fences and eliminate some of them, and the ledger counters must
    # reconcile into a sane ratio.
    if j["fence_emitted"] <= 0:
        fail(f"{bench_path}: fence ledger recorded no emitted fences")
    ratio = j["fence_merged_ratio"]
    if not (0.0 <= ratio <= 1.0):
        fail(f"{bench_path}: fence_merged_ratio {ratio} out of [0, 1]")
    if ratio <= 0.0:
        fail(f"{bench_path}: risotto merged/dropped no fences at all")
    expect = (j["fence_merged"] + j["fence_dropped"]) / j["fence_emitted"]
    if abs(ratio - expect) > 1e-3:
        fail(
            f"{bench_path}: fence_merged_ratio {ratio} does not match "
            f"ledger counters ({expect:.4f})"
        )
    # Tier-lifecycle latency: the async pass must have published real
    # installs and the percentiles must be positive and ordered.
    lat = j["install_latency"]
    if lat["count"] <= 0:
        fail(f"{bench_path}: no request-to-publish latency samples")
    if not (0 < lat["p50_ns"] <= lat["p95_ns"] <= lat["p99_ns"]):
        fail(f"{bench_path}: install latency percentiles not ordered: {lat}")
    trace = load(trace_path)
    evs = trace.get("traceEvents", [])
    if not evs:
        fail(f"{trace_path}: empty trace")
    for e in evs:
        if not {"name", "cat", "ph", "ts", "pid", "tid"} <= set(e):
            fail(f"{trace_path}: malformed event {e}")
        if e["ph"] not in ("X", "i"):
            fail(f"{trace_path}: unexpected phase in {e}")
    cats = {e["cat"] for e in evs}
    if "engine" not in cats or "opt" not in cats:
        fail(f"{trace_path}: missing categories (have {sorted(cats)})")
    print(
        f"obs OK: {len(evs)} events, categories {sorted(cats)}, "
        f"disabled overhead {j['disabled_overhead_pct']:.3f}%, "
        f"recorder {j['recorder_overhead_pct']:.3f}%, "
        f"merged ratio {ratio:.3f}, "
        f"install p95 {lat['p95_ns']} ns ({lat['count']} samples)"
    )


def cmd_witness(report_dir):
    files = sorted(glob.glob(os.path.join(report_dir, "witness-*.json")))
    if not files:
        fail(f"{report_dir}: no witness artifacts written")
    seen = {}
    for f in files:
        j = load(f)
        check_envelope(j, f, "witness", git_rev=False)
        for k in ("scheme", "program", "behaviour", "target", "violations"):
            if k not in j:
                fail(f"{f}: missing key {k}")
        if not j["target"]["events"]:
            fail(f"{f}: empty target execution")
        if not j["violations"]:
            fail(f"{f}: no violated axiom")
        for v in j["violations"]:
            if not v["axiom"] or not v["cycle"]:
                fail(f"{f}: malformed violation {v}")
        seen.setdefault(j["program"], set()).add(j["scheme"])
    # The paper's four §3 counterexamples must each have a witness.
    for prog in ("MPQ", "SBQ", "SBAL", "FMR"):
        if prog not in seen:
            fail(f"no witness for {prog} (have {sorted(seen)})")
    html_path = os.path.join(report_dir, "report.html")
    try:
        html = open(html_path).read()
    except OSError as e:
        fail(f"cannot read {html_path}: {e}")
    if "<svg" not in html or "crimson" not in html:
        fail(f"{html_path}: no highlighted witness graphs")
    if "Axiom coverage" not in html or "Bench trajectory" not in html:
        fail(f"{html_path}: missing coverage matrix or bench trajectory")
    print(f"witness OK: {len(files)} witnesses over {sorted(seen)} programs")


def cmd_chaos(path):
    j = load(path)
    check_envelope(j, path, "chaos")
    if len(j["campaigns"]) < 3:
        fail(f"{path}: need >= 3 seeded plans, have {len(j['campaigns'])}")
    for c in j["campaigns"]:
        if not c["converged"]:
            fail(f"{path}: campaign diverged: {c}")
    if not (j["watchdog"]["fired"] and j["watchdog"]["recovered"]):
        fail(f"{path}: watchdog invariant failed: {j['watchdog']}")
    if not all(j["cache"].values()):
        fail(f"{path}: cache campaign failed: {j['cache']}")
    pm = j["postmortems"]
    if pm["written"] < 1:
        fail(f"{path}: injected trap produced no postmortem")
    if not (pm["trap_dumped"] and pm["deterministic"] and pm["well_formed"]):
        fail(f"{path}: postmortem campaign failed: {pm}")
    pm_file = os.path.join(pm["dir"], "postmortem-000.json")
    if os.path.exists(pm["dir"]) and not glob.glob(
        os.path.join(pm["dir"], "postmortem-*.json")
    ):
        fail(f"{path}: postmortem dir {pm['dir']} holds no dumps")
    print(
        f"chaos OK: {len(j['campaigns'])} campaigns over {j['cells']} cells, "
        f"{j['watchdog']['timeouts']} watchdog timeout(s), "
        f"{pm['written']} deterministic postmortem(s) in {pm['dir']}/ "
        f"({pm_file if os.path.exists(pm_file) else 'artifact elsewhere'})"
    )


def cmd_generator(path):
    j = load(path)
    check_envelope(j, path, "generator")
    if not j["verdicts_identical"]:
        fail(f"{path}: planned verdicts diverge from per-task")
    if not j["all_ok"]:
        fail(f"{path}: a generated scheme reported a violation")
    if j["classes"] <= 0 or j["classes"] > j["programs"]:
        fail(f"{path}: implausible class count {j['classes']}")
    if not (0.0 <= j["dedup_ratio"] < 1.0):
        fail(f"{path}: dedup_ratio {j['dedup_ratio']} out of range")
    if j["speedup"] < 1.0:
        fail(
            f"{path}: planned generated sweep slower than per-task "
            f"(speedup {j['speedup']:.3f} < 1.0)"
        )
    memo = j["memo"]
    if memo["tasks"] != j["programs"] * j["schemes"]:
        fail(
            f"{path}: memo served {memo['tasks']} verdicts, expected "
            f"{j['programs'] * j['schemes']}"
        )
    if memo["tasks_per_s"] <= 0:
        fail(f"{path}: non-positive memo throughput")
    print(
        f"generator OK: {j['programs']} programs -> {j['classes']} classes "
        f"(dedup {j['dedup_ratio']:.1%}), speedup {j['speedup']:.2f}x, "
        f"memo {memo['tasks_per_s']:.0f} tasks/s"
    )


def cmd_tiers(path):
    j = load(path)
    check_envelope(j, path, "tiers")
    if not j["results_identical"]:
        fail(f"{path}: tier0/sync-all/tiered guest results diverge")
    ti, sy = j["tiered"], j["sync_all"]
    if ti["interp_execs"] == 0:
        fail(f"{path}: tiered run never executed on the interpreter (tier 0)")
    if ti["tier1_installed"] == 0:
        fail(f"{path}: no background compile was ever published (tier 1)")
    if ti["superblocks"] == 0:
        fail(f"{path}: no profile-guided superblock was formed (tier 2)")
    if ti["cycles_per_block"] > sy["cycles_per_block"]:
        fail(
            f"{path}: tiered execution cost more guest cycles than sync-all "
            f"({ti['cycles_per_block']:.3f} vs {sy['cycles_per_block']:.3f} "
            f"cycles/block)"
        )
    cold = j["cold"]
    if cold["tiered_s"] >= cold["sync_s"]:
        fail(
            f"{path}: tiered cold start not faster than synchronous "
            f"translation ({cold['tiered_s']:.6f}s vs {cold['sync_s']:.6f}s)"
        )
    if j["guest_blocks"] <= 0:
        fail(f"{path}: implausible guest-block count {j['guest_blocks']}")
    print(
        f"tiers OK: {ti['tier1_installed']} installs, "
        f"{ti['superblocks']} superblocks, "
        f"{ti['cycles_per_block']:.1f} vs {sy['cycles_per_block']:.1f} "
        f"cycles/block, cold start {cold['speedup']:.2f}x, parity holds"
    )


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    cmd, args = argv[1], argv[2:]
    if cmd == "envelope":
        cmd_envelope(args)
    elif cmd == "refinement" and len(args) == 1:
        cmd_refinement(args[0])
    elif cmd == "dispatch" and len(args) == 1:
        cmd_dispatch(args[0])
    elif cmd == "obs" and len(args) == 2:
        cmd_obs(args[0], args[1])
    elif cmd == "witness" and len(args) == 1:
        cmd_witness(args[0])
    elif cmd == "chaos" and len(args) == 1:
        cmd_chaos(args[0])
    elif cmd == "generator" and len(args) == 1:
        cmd_generator(args[0])
    elif cmd == "tiers" and len(args) == 1:
        cmd_tiers(args[0])
    else:
        print(__doc__, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
