#!/bin/sh
# Guard the fault-isolation discipline: the translation pipeline
# (lib/core, lib/arm, lib/linker) must report failures through typed
# faults (Core.Fault) or result values, never by crashing the whole
# engine with a bare failwith / invalid_arg.  fault.ml is the one
# place allowed to raise.
#
# Run via `dune build @check-no-crash` (part of `dune runtest`).
#
# A second mode smokes the generated corpus end to end:
#
#   tools/check_no_crash.sh --generated N SEED
#
# generates N seeded programs, dedups them and checks every generated
# scheme through the batch planner (litmus_run --generate) — every
# verdict must hold (the generated schemes are the paper's sound
# mappings) and nothing may crash.
set -eu

if [ "${1:-}" = "--generated" ]; then
  n=${2:?usage: check_no_crash.sh --generated N SEED}
  seed=${3:?usage: check_no_crash.sh --generated N SEED}
  exe=_build/default/bin/litmus_run.exe
  if [ -x "$exe" ]; then
    "$exe" --generate "$n" --seed "$seed"
  else
    dune exec bin/litmus_run.exe -- --generate "$n" --seed "$seed"
  fi
  echo "generated-corpus smoke OK (n=$n seed=$seed)"
  exit 0
fi

root=${1:-.}
status=0

for dir in lib/core lib/arm lib/linker; do
  for f in "$root"/$dir/*.ml; do
    case $f in
      */fault.ml) continue ;;
    esac
    if grep -Hn 'failwith\|invalid_arg' "$f"; then
      status=1
    fi
  done
done

if [ "$status" -ne 0 ]; then
  echo "error: bare failwith/invalid_arg in the translation pipeline;" >&2
  echo "raise a typed Core.Fault (or return a result) instead." >&2
fi
exit $status
