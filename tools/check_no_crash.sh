#!/bin/sh
# Guard the fault-isolation discipline: the translation pipeline
# (lib/core, lib/arm, lib/linker) must report failures through typed
# faults (Core.Fault) or result values, never by crashing the whole
# engine with a bare failwith / invalid_arg.  fault.ml is the one
# place allowed to raise.
#
# Run via `dune build @check-no-crash` (part of `dune runtest`).
set -eu

root=${1:-.}
status=0

for dir in lib/core lib/arm lib/linker; do
  for f in "$root"/$dir/*.ml; do
    case $f in
      */fault.ml) continue ;;
    esac
    if grep -Hn 'failwith\|invalid_arg' "$f"; then
      status=1
    fi
  done
done

if [ "$status" -ne 0 ]; then
  echo "error: bare failwith/invalid_arg in the translation pipeline;" >&2
  echo "raise a typed Core.Fault (or return a result) instead." >&2
fi
exit $status
