(* Dynamic host library linker demo (paper §6.2, Figure 11): a guest
   program computes sha256 digests and sines through its PLT; with the
   linker off the bundled guest library is translated, with it on the
   native host functions run instead — same results, far fewer cycles.

     dune exec examples/host_linker_demo.exe *)

module I = X86.Insn
module R = X86.Reg
open X86.Asm

let driver =
  [
    Label "main";
    (* Fill a 64-byte buffer at 0x30000. *)
    Ins (I.Mov_ri (R.RCX, 0x0123456789abcdefL));
    Ins (I.Store ({ base = None; index = None; disp = 0x30000L }, I.R R.RCX));
    Ins (I.Store ({ base = None; index = None; disp = 0x30008L }, I.R R.RCX));
    (* r13 = sha256(buf, 16) *)
    Ins (I.Mov_ri (R.RDI, 0x30000L));
    Ins (I.Mov_ri (R.RSI, 16L));
    Call_lbl "sha256@plt";
    Ins (I.Mov_rr (R.R13, R.RAX));
    (* r14 = bits(sqrt(2.0)) *)
    Ins (I.Mov_ri (R.RDI, Int64.bits_of_float 2.0));
    Call_lbl "sqrt@plt";
    Ins (I.Mov_rr (R.R14, R.RAX));
    Ins I.Hlt;
  ]

let () =
  let image =
    Image.Gelf.build ~entry:"main"
      ~imports:[ Harness.Guest_libs.import "sha256"; Harness.Guest_libs.import "sqrt" ]
      driver
  in
  Format.printf "imports: %s@."
    (String.concat ", " image.Image.Gelf.imports);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Format.printf "IDL describing the host library:@.%s@.@."
    (String.concat "\n"
       (List.filter
          (fun l -> contains l "sha256" || contains l "sqrt")
          (String.split_on_char '\n' Linker.Hostlib.idl_text)));

  let run config =
    let eng = Core.Engine.create config image in
    let t = Core.Engine.run eng in
    (t, eng)
  in
  let tq, _ = run Core.Config.qemu in
  let tr, engr = run Core.Config.risotto in
  let entries = Linker.Link.entries (Core.Engine.links engr) in
  Format.printf "linker resolved %d PLT entries:@." (List.length entries);
  List.iter
    (fun (e : Linker.Link.entry) ->
      Format.printf "  %a  at PLT 0x%Lx@." Linker.Idl.pp_signature
        e.Linker.Link.signature e.Linker.Link.plt_addr)
    entries;

  (match Linker.Link.unresolved_causes (Core.Engine.links engr) with
  | [] -> Format.printf "no unresolved imports@."
  | causes ->
      List.iter
        (fun (name, cause) ->
          Format.printf "  unresolved %s: %s@." name
            (Linker.Link.cause_name cause))
        causes);

  (* What resolution reports when linking goes wrong: an IDL that
     describes a function the host lacks, and omits one the image
     imports.  Each unresolved import carries its cause. *)
  let probe_image =
    Image.Gelf.build ~entry:"probe"
      ~imports:
        [
          Harness.Guest_libs.import "sha256";
          {
            Image.Gelf.name = "frobnicate";
            guest_impl = [ Label "frobnicate@impl"; Ins I.Ret ];
          };
        ]
      [ Label "probe"; Ins I.Hlt ]
  in
  let partial_idl = Linker.Idl.parse "i64 frobnicate(i64);" in
  let probe_links = Linker.Link.resolve probe_image partial_idl in
  Format.printf "@.resolution against a partial IDL:@.";
  List.iter
    (fun (name, cause) ->
      Format.printf "  unresolved %s: %s@." name (Linker.Link.cause_name cause))
    (Linker.Link.unresolved_causes probe_links);

  let row name (t : Core.Engine.guest_thread) =
    Format.printf "%-22s cycles=%-8d host-calls=%d sha256=%Lx sqrt2=%.6f@."
      name (Core.Engine.cycles t) t.Core.Engine.arm.Arm.Machine.host_calls
      (Core.Engine.reg t R.R13)
      (Int64.float_of_bits (Core.Engine.reg t R.R14))
  in
  Format.printf "@.";
  row "qemu (guest library)" tq;
  row "risotto (host-linked)" tr;
  Format.printf "@.speed-up from host linking: %.1fx@."
    (float_of_int (Core.Engine.cycles tq) /. float_of_int (Core.Engine.cycles tr))
