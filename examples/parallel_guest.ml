(* A concurrent guest binary: the main thread spawns workers through
   the clone syscall; workers chunk-sum an array with atomic
   accumulation; main spin-waits and prints the total.  This is the
   kind of multi-threaded x86 program the paper's whole pipeline is
   about — run it under all four configurations and compare cycles and
   fences.

     dune exec examples/parallel_guest.exe *)

module I = X86.Insn
module R = X86.Reg
open X86.Asm

let workers = 4
let chunk = 64 (* array elements per worker *)
let array_base = 0x20000L
let acc = I.abs 0x7000L
let done_ctr = I.abs 0x7040L

(* worker(rdi = chunk index): sum array[chunk] and xadd into acc. *)
let worker =
  [
    Label "worker";
    (* r9 = &array[rdi * chunk] *)
    Ins (I.Mov_rr (R.R9, R.RDI));
    Ins (I.Alu (I.Imul, R.R9, I.I (Int64.of_int (8 * chunk))));
    Ins (I.Alu (I.Add, R.R9, I.I array_base));
    Ins (I.Mov_ri (R.RAX, 0L));
    Ins (I.Mov_ri (R.RCX, Int64.of_int chunk));
    Label "wloop";
    Ins (I.Load (R.RDX, I.based R.R9 0L));
    Ins (I.Alu (I.Add, R.RAX, I.R R.RDX));
    Ins (I.Alu (I.Add, R.R9, I.I 8L));
    Ins (I.Dec R.RCX);
    Ins (I.Test (R.RCX, I.R R.RCX));
    Jcc_lbl (I.Ne, "wloop");
    Ins (I.Lock_xadd (acc, R.RAX));
    Ins (I.Mov_ri (R.R8, 1L));
    Ins (I.Lock_xadd (done_ctr, R.R8));
    Ins I.Hlt;
  ]

let main =
  [
    Label "main";
    (* initialise the array: array[i] = i + 1 *)
    Ins (I.Mov_ri (R.R9, array_base));
    Ins (I.Mov_ri (R.RCX, 1L));
    Label "init";
    Ins (I.Store (I.based R.R9 0L, I.R R.RCX));
    Ins (I.Alu (I.Add, R.R9, I.I 8L));
    Ins (I.Inc R.RCX);
    Ins (I.Cmp (R.RCX, I.I (Int64.of_int ((workers * chunk) + 1))));
    Jcc_lbl (I.Ne, "init");
    (* spawn the workers *)
    Ins (I.Mov_ri (R.RSI, 0L));
    Label "spawn_loop";
    Ins (I.Mov_ri (R.RAX, 56L));
    Mov_lbl (R.RDI, "worker");
    Ins I.Syscall;
    Ins (I.Inc R.RSI);
    Ins (I.Cmp (R.RSI, I.I (Int64.of_int workers)));
    Jcc_lbl (I.Ne, "spawn_loop");
    (* wait for all workers *)
    Label "wait";
    Ins (I.Load (R.RBX, done_ctr));
    Ins (I.Cmp (R.RBX, I.I (Int64.of_int workers)));
    Jcc_lbl (I.Ne, "wait");
    Ins (I.Load (R.R13, acc));
    Ins I.Hlt;
  ]

(* clone(fn, arg): rsi already holds the chunk index. *)
let items =
  main @ worker

let () =
  let n = workers * chunk in
  Format.printf "guest: %d workers summing %d elements (expect %d)@." workers n
    (n * (n + 1) / 2);
  Format.printf "@.%-12s %10s %10s %8s %9s %s@." "config" "result" "cycles"
    "fences" "atomics" "threads";
  List.iter
    (fun config ->
      let image = Image.Gelf.build ~entry:"main" items in
      let eng = Core.Engine.create config image in
      let main_t = Core.Engine.spawn eng ~tid:0 ~entry:image.Image.Gelf.entry () in
      let all = Core.Engine.threads (Core.Engine.run_concurrent eng [ main_t ]) in
      let total f = List.fold_left (fun a g -> a + f g.Core.Engine.arm) 0 all in
      Format.printf "%-12s %10Ld %10d %8d %9d %d@." config.Core.Config.name
        (Core.Engine.reg main_t R.R13)
        (total (fun t -> t.Arm.Machine.cycles))
        (total (fun t -> t.Arm.Machine.fences))
        (total (fun t -> t.Arm.Machine.helper_calls))
        (List.length all))
    Core.Config.all
